package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// newTestServer starts a Server behind an httptest server and tears both
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// quickSpec is a 4x4-torus load job finishing in well under a second.
func quickSpec(seed uint64, measure int64) string {
	return fmt.Sprintf(`{
		"kind": "load",
		"config": {"topology": {"kind": "torus", "radix": [4, 4]}, "seed": %d},
		"load": {"pattern": "uniform", "load": 0.05, "fixedlength": 16},
		"warmup": 100, "measure": %d, "interval_cycles": 100
	}`, seed, measure)
}

func doReq(t *testing.T, ts *httptest.Server, method, path, body string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// waitState polls until the job reaches a state accepted by ok.
func waitState(t *testing.T, ts *httptest.Server, id string, ok func(State) bool) View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, body := doReq(t, ts, "GET", "/v1/jobs/"+id, "")
		var v View
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("bad job view %q: %v", body, err)
		}
		if ok(v.State) {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the wanted state", id)
	return View{}
}

func submit(t *testing.T, ts *httptest.Server, spec string) View {
	t.Helper()
	resp, body := doReq(t, ts, "POST", "/v1/jobs", spec)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var v View
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestHandlers(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, method, path, body string
		wantCode                 int
		wantSub                  string
	}{
		{"healthz ok", "GET", "/healthz", "", 200, `"status": "ok"`},
		{"metrics", "GET", "/metrics", "", 200, "waved_queue_depth"},
		{"submit bad json", "POST", "/v1/jobs", "{", 400, "bad spec"},
		{"submit unknown field", "POST", "/v1/jobs", `{"kindd":"load"}`, 400, "unknown field"},
		{"submit unknown kind", "POST", "/v1/jobs", `{"kind":"weird"}`, 400, "unknown job kind"},
		{"load without workload", "POST", "/v1/jobs", `{"kind":"load"}`, 400, "workload"},
		{"closed without workload", "POST", "/v1/jobs", `{"kind":"closed"}`, 400, "workload"},
		{"unknown experiment", "POST", "/v1/jobs", `{"kind":"experiment","experiment":"e99"}`, 400, "unknown experiment"},
		{"negative workers", "POST", "/v1/jobs",
			`{"kind":"load","config":{"workers":-3},"load":{"pattern":"uniform","load":0.05,"fixedlength":16}}`,
			400, "auto-tunes the engine"},
		{"get unknown job", "GET", "/v1/jobs/zzz", "", 404, "no such job"},
		{"result unknown job", "GET", "/v1/jobs/zzz/result", "", 404, "no such job"},
		{"stream unknown job", "GET", "/v1/jobs/zzz/stream", "", 404, "no such job"},
		{"cancel unknown job", "DELETE", "/v1/jobs/zzz", "", 404, "no such job"},
		{"list empty", "GET", "/v1/jobs", "", 200, `"jobs"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doReq(t, ts, tc.method, tc.path, tc.body)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, tc.wantCode, body)
			}
			if !strings.Contains(body, tc.wantSub) {
				t.Fatalf("body %q missing %q", body, tc.wantSub)
			}
		})
	}
}

func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	v := submit(t, ts, quickSpec(1, 3000))
	if v.State != StateQueued && v.State != StateRunning {
		t.Fatalf("fresh job state = %s", v.State)
	}

	// Result is 409 until the job finishes.
	resp, _ := doReq(t, ts, "GET", "/v1/jobs/"+v.ID+"/result", "")
	if resp.StatusCode != http.StatusConflict && resp.StatusCode != http.StatusOK {
		t.Fatalf("early result: status %d", resp.StatusCode)
	}

	final := waitState(t, ts, v.ID, State.Terminal)
	if final.State != StateDone {
		t.Fatalf("job finished %s (%s)", final.State, final.Error)
	}
	if final.Result == nil {
		t.Fatal("done view carries no result")
	}
	var res Result
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindLoad || res.Load == nil || res.Stats == nil {
		t.Fatalf("incomplete result: %+v", res)
	}
	if res.Load.Delivered == 0 {
		t.Fatal("job delivered no messages")
	}

	// The job shows up in the listing.
	_, body := doReq(t, ts, "GET", "/v1/jobs", "")
	if !strings.Contains(body, v.ID) {
		t.Fatalf("listing %q missing job %s", body, v.ID)
	}
}

func TestClosedLoopJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	v := submit(t, ts, `{
		"kind": "closed",
		"config": {"topology": {"kind": "torus", "radix": [4, 4]}, "seed": 3},
		"closed": {"pattern": "transpose", "reqflits": 4, "replyflits": 16,
		           "outstanding": 1, "requests": 2}
	}`)
	final := waitState(t, ts, v.ID, State.Terminal)
	if final.State != StateDone {
		t.Fatalf("closed job finished %s (%s)", final.State, final.Error)
	}
	var res Result
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Closed == nil || res.Closed.Completed == 0 {
		t.Fatalf("closed result empty: %+v", res)
	}
}

func TestExperimentJob(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	v := submit(t, ts, `{
		"kind": "experiment", "experiment": "e5",
		"params": {"radix": 4, "warmup": 200, "measure": 800, "seed": 1}
	}`)
	final := waitState(t, ts, v.ID, State.Terminal)
	if final.State != StateDone {
		t.Fatalf("experiment finished %s (%s)", final.State, final.Error)
	}
	var res Result
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Experiment == nil || res.Experiment.Table == "" || res.Experiment.CSV == "" {
		t.Fatalf("experiment result empty: %+v", res)
	}
	// Sweep progress lines were published.
	resp, body := doReq(t, ts, "GET", "/v1/jobs/"+v.ID+"/stream", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if !strings.Contains(body, `"type":"sweep"`) {
		t.Fatalf("stream %q has no sweep lines", body)
	}
}

func TestFailedJobClassified(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// An unknown traffic pattern passes spec validation (it's a workload
	// detail) but fails at run time: state must be failed with the cause.
	v := submit(t, ts, `{
		"kind": "load",
		"config": {"topology": {"kind": "torus", "radix": [4, 4]}},
		"load": {"pattern": "nonsense", "load": 0.05, "fixedlength": 16},
		"measure": 500
	}`)
	final := waitState(t, ts, v.ID, State.Terminal)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "pattern") {
		t.Fatalf("error %q does not name the cause", final.Error)
	}
	resp, body := doReq(t, ts, "GET", "/v1/jobs/"+v.ID+"/result", "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("failed job result: status %d body %s", resp.StatusCode, body)
	}
}

// TestRetryAfterNeverZero pins the Retry-After estimate: whatever the queue
// depth and worker count — including an empty queue, and depths that truncate
// to zero under integer division — the advertised wait is at least one
// second, and deep queues round up rather than down.
func TestRetryAfterNeverZero(t *testing.T) {
	cases := []struct {
		depth, workers, want int
	}{
		{0, 1, 1}, {0, 8, 1},
		{1, 4, 1}, {3, 4, 1}, // would be 0 under floor division
		{4, 4, 1},
		{5, 4, 2}, // ceiling, not floor
		{16, 2, 8},
	}
	for _, tc := range cases {
		s := &Server{cfg: Config{Workers: tc.workers}, queue: newJobQueue(32)}
		for i := 0; i < tc.depth; i++ {
			s.queue.push(&Job{})
		}
		if got := s.retryAfter(); got != tc.want {
			t.Errorf("retryAfter(depth=%d, workers=%d) = %d, want %d",
				tc.depth, tc.workers, got, tc.want)
		}
		if got := s.retryAfter(); got < 1 {
			t.Errorf("retryAfter(depth=%d, workers=%d) = %d, below 1s floor",
				tc.depth, tc.workers, got)
		}
	}
}

// TestRetryAfterHeaderParses drives the real 429 path and asserts the header
// a client sees is a parseable, positive integer (RFC 9110 delta-seconds).
func TestRetryAfterHeaderParses(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1})
	// Distinct seeds: identical specs coalesce via the single-flight table
	// instead of filling the queue.
	running := submit(t, ts, quickSpec(101, 2_000_000_000))
	waitState(t, ts, running.ID, func(st State) bool { return st == StateRunning })
	queued := submit(t, ts, quickSpec(102, 2_000_000_000))

	resp, _ := doReq(t, ts, "POST", "/v1/jobs", quickSpec(103, 2_000_000_000))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if secs < 1 {
		t.Fatalf("Retry-After = %d, want >= 1", secs)
	}

	doReq(t, ts, "DELETE", "/v1/jobs/"+queued.ID, "")
	doReq(t, ts, "DELETE", "/v1/jobs/"+running.ID, "")
	waitState(t, ts, queued.ID, State.Terminal)
	waitState(t, ts, running.ID, State.Terminal)
}
