package server

import (
	"context"
	"encoding/json"
	"testing"

	"repro/wave"
)

// TestSimConfigMergesOverDefaults: absent fields keep DefaultConfig values
// so clients can submit sparse configs.
func TestSimConfigMergesOverDefaults(t *testing.T) {
	var c SimConfig
	if err := json.Unmarshal([]byte(`{"protocol":"wormhole","seed":42}`), &c); err != nil {
		t.Fatal(err)
	}
	def := wave.DefaultConfig()
	got := wave.Config(c)
	if got.Protocol != "wormhole" || got.Seed != 42 {
		t.Fatalf("overrides not applied: %+v", got)
	}
	if got.NumVCs != def.NumVCs || got.CacheCapacity != def.CacheCapacity ||
		got.Topology.Kind != def.Topology.Kind {
		t.Fatalf("defaults not preserved: got %+v, defaults %+v", got, def)
	}
}

func TestNormalizeFillsDefaults(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	sp := Spec{Kind: KindLoad, Load: &wave.Workload{Pattern: "uniform", Load: 0.05, FixedLength: 16}}
	if err := s.normalize(&sp); err != nil {
		t.Fatal(err)
	}
	if sp.Measure == 0 || sp.IntervalCycles == 0 {
		t.Fatalf("defaults not filled: %+v", sp)
	}
}

func TestNormalizeRejections(t *testing.T) {
	s := New(Config{})
	defer s.Shutdown(context.Background())
	cases := []struct {
		name string
		spec Spec
	}{
		{"unknown kind", Spec{Kind: "weird"}},
		{"empty kind", Spec{}},
		{"load without workload", Spec{Kind: KindLoad}},
		{"closed without workload", Spec{Kind: KindClosed}},
		{"unknown experiment", Spec{Kind: KindExperiment, Experiment: "e99"}},
		{"negative timeout", Spec{Kind: KindExperiment, Experiment: "e1", TimeoutSec: -1}},
		{"negative warmup", Spec{Kind: KindLoad, Load: &wave.Workload{}, Warmup: -1}},
	}
	for _, tc := range cases {
		sp := tc.spec
		if err := s.normalize(&sp); err == nil {
			t.Errorf("%s: normalize accepted %+v", tc.name, tc.spec)
		}
	}
}
