package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse hammers the trace parser with arbitrary input: it must never
// panic, and anything it accepts must re-encode and re-parse to the same
// program (a full round-trip invariant).
func FuzzParse(f *testing.F) {
	f.Add("@0 open 0 5\n@3 send 0 5 128\n@9 close 0 5\n")
	f.Add("# comment\n\n@1 send 1 2 3 wormhole\n")
	f.Add("@x open a b")
	f.Add("@-5 close 0 0")
	f.Add(strings.Repeat("@1 send 0 1 1\n", 50))
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := Encode(&buf, p); err != nil {
			t.Fatalf("accepted program failed to encode: %v", err)
		}
		p2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(p2) != len(p) {
			t.Fatalf("round trip length %d vs %d", len(p2), len(p))
		}
		for i := range p {
			if p[i] != p2[i] {
				t.Fatalf("directive %d: %+v vs %+v", i, p[i], p2[i])
			}
		}
	})
}
