package trace

import (
	"bytes"
	"strings"
	"testing"
)

func sample() Program {
	return Program{
		{Cycle: 0, Op: Open, Src: 1, Dst: 2},
		{Cycle: 5, Op: Send, Src: 1, Dst: 2, Flits: 64},
		{Cycle: 5, Op: Send, Src: 1, Dst: 2, Flits: 4, Wormhole: true},
		{Cycle: 9, Op: Close, Src: 1, Dst: 2},
	}
}

func TestEncodeParseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(got) != len(want) {
		t.Fatalf("round trip length %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("directive %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	src := `
# DSM phase one
@0 open 0 5

@3 send 0 5 128
`
	p, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 2 || p[0].Op != Open || p[1].Flits != 128 {
		t.Fatalf("parsed: %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"open 0 5",             // missing @cycle
		"@x open 0 5",          // bad cycle
		"@1 open 0",            // too few fields
		"@1 open 0 5 9",        // too many for open
		"@1 close 0 5 9",       // too many for close
		"@1 send 0 5",          // send missing flits
		"@1 send 0 5 8 circus", // bad flag
		"@1 send 0 5 x",        // bad flits
		"@1 jump 0 5",          // unknown op
		"@1 send a 5 8",        // bad src
		"@1 send 0 b 8",        // bad dst
	}
	for _, line := range bad {
		if _, err := Parse(strings.NewReader(line)); err == nil {
			t.Errorf("accepted %q", line)
		}
	}
}

func TestValidate(t *testing.T) {
	p := sample()
	if err := p.Validate(16); err != nil {
		t.Fatal(err)
	}
	out := Program{{Cycle: 5, Op: Open, Src: 0, Dst: 1}, {Cycle: 1, Op: Open, Src: 0, Dst: 2}}
	if err := out.Validate(16); err == nil {
		t.Fatal("out-of-order program accepted")
	}
	out.Sort()
	if err := out.Validate(16); err != nil {
		t.Fatalf("sorted program rejected: %v", err)
	}
	bad := Program{{Cycle: 0, Op: Open, Src: 99, Dst: 1}}
	if err := bad.Validate(16); err == nil {
		t.Fatal("node out of range accepted")
	}
	badLen := Program{{Cycle: 0, Op: Send, Src: 0, Dst: 1, Flits: 0}}
	if err := badLen.Validate(16); err == nil {
		t.Fatal("zero-flit send accepted")
	}
}

func TestPlayer(t *testing.T) {
	pl := NewPlayer(sample())
	if pl.Done() || pl.Remaining() != 4 {
		t.Fatal("fresh player state wrong")
	}
	var fired []Directive
	pl.Tick(0, func(d Directive) { fired = append(fired, d) })
	if len(fired) != 1 || fired[0].Op != Open {
		t.Fatalf("tick 0 fired %+v", fired)
	}
	pl.Tick(4, func(d Directive) { fired = append(fired, d) })
	if len(fired) != 1 {
		t.Fatal("tick 4 fired early directives")
	}
	pl.Tick(7, func(d Directive) { fired = append(fired, d) })
	if len(fired) != 3 {
		t.Fatalf("tick 7: %d fired", len(fired))
	}
	pl.Tick(100, func(d Directive) { fired = append(fired, d) })
	if !pl.Done() || len(fired) != 4 {
		t.Fatal("player did not finish")
	}
}

func TestOpString(t *testing.T) {
	if Open.String() != "open" || Send.String() != "send" || Close.String() != "close" {
		t.Fatal("op strings wrong")
	}
	if Op(9).String() != "op(9)" {
		t.Fatal("unknown op string wrong")
	}
}
