// Package trace defines the CARP directive format: the sequence of circuit
// set-up, send and tear-down instructions that the paper expects "the
// programmer and/or the compiler" to generate (section 3.2). Since the
// compiler support is explicitly left as future work by the paper, this
// format is the substitution: workload generators with perfect knowledge of
// their communication pattern emit the directives a compiler would.
//
// The text format is line-oriented:
//
//	# comment
//	@<cycle> open <src> <dst>
//	@<cycle> send <src> <dst> <flits> [wormhole]
//	@<cycle> close <src> <dst>
//
// Directives must be sorted by cycle (Parse verifies). The optional trailing
// "wormhole" on send marks messages the compiler routes around the circuit
// (short messages, per section 3.2).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Op is a directive opcode.
type Op uint8

const (
	// Open requests circuit establishment.
	Open Op = iota
	// Send transmits a message.
	Send
	// Close tears the circuit down.
	Close
)

func (o Op) String() string {
	switch o {
	case Open:
		return "open"
	case Send:
		return "send"
	case Close:
		return "close"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Directive is one timed CARP instruction.
type Directive struct {
	Cycle int64
	Op    Op
	Src   int
	Dst   int
	// Flits is the message length (Send only).
	Flits int
	// Wormhole marks a Send the compiler keeps off the circuit.
	Wormhole bool
}

// Program is an ordered directive list.
type Program []Directive

// Validate checks ordering and field sanity against a node count.
func (p Program) Validate(nodes int) error {
	var last int64 = -1 << 62
	for i, d := range p {
		if d.Cycle < last {
			return fmt.Errorf("trace: directive %d out of order (cycle %d after %d)", i, d.Cycle, last)
		}
		last = d.Cycle
		if d.Src < 0 || d.Src >= nodes || d.Dst < 0 || d.Dst >= nodes {
			return fmt.Errorf("trace: directive %d has node out of range (%d -> %d, %d nodes)", i, d.Src, d.Dst, nodes)
		}
		if d.Op == Send && d.Flits < 1 {
			return fmt.Errorf("trace: directive %d sends %d flits", i, d.Flits)
		}
	}
	return nil
}

// Sort orders the program by cycle (stable, preserving same-cycle order).
func (p Program) Sort() {
	sort.SliceStable(p, func(i, j int) bool { return p[i].Cycle < p[j].Cycle })
}

// Encode writes the program in text form.
func Encode(w io.Writer, p Program) error {
	bw := bufio.NewWriter(w)
	for _, d := range p {
		var err error
		switch d.Op {
		case Open:
			_, err = fmt.Fprintf(bw, "@%d open %d %d\n", d.Cycle, d.Src, d.Dst)
		case Close:
			_, err = fmt.Fprintf(bw, "@%d close %d %d\n", d.Cycle, d.Src, d.Dst)
		case Send:
			if d.Wormhole {
				_, err = fmt.Fprintf(bw, "@%d send %d %d %d wormhole\n", d.Cycle, d.Src, d.Dst, d.Flits)
			} else {
				_, err = fmt.Fprintf(bw, "@%d send %d %d %d\n", d.Cycle, d.Src, d.Dst, d.Flits)
			}
		default:
			err = fmt.Errorf("trace: cannot encode op %v", d.Op)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads the text form. Blank lines and #-comments are ignored.
func Parse(r io.Reader) (Program, error) {
	var p Program
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "@") {
			return nil, fmt.Errorf("trace: line %d: malformed directive %q", lineNo, line)
		}
		cycle, err := strconv.ParseInt(fields[0][1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad cycle: %v", lineNo, err)
		}
		src, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad src: %v", lineNo, err)
		}
		dst, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad dst: %v", lineNo, err)
		}
		d := Directive{Cycle: cycle, Src: src, Dst: dst}
		switch fields[1] {
		case "open":
			d.Op = Open
			if len(fields) != 4 {
				return nil, fmt.Errorf("trace: line %d: open takes 2 operands", lineNo)
			}
		case "close":
			d.Op = Close
			if len(fields) != 4 {
				return nil, fmt.Errorf("trace: line %d: close takes 2 operands", lineNo)
			}
		case "send":
			d.Op = Send
			if len(fields) < 5 || len(fields) > 6 {
				return nil, fmt.Errorf("trace: line %d: send takes 3 operands [+ wormhole]", lineNo)
			}
			d.Flits, err = strconv.Atoi(fields[4])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad flit count: %v", lineNo, err)
			}
			if len(fields) == 6 {
				if fields[5] != "wormhole" {
					return nil, fmt.Errorf("trace: line %d: unknown send flag %q", lineNo, fields[5])
				}
				d.Wormhole = true
			}
		default:
			return nil, fmt.Errorf("trace: line %d: unknown op %q", lineNo, fields[1])
		}
		p = append(p, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return p, nil
}

// Player feeds a program into protocol calls cycle by cycle.
type Player struct {
	prog Program
	next int
}

// NewPlayer wraps a validated program.
func NewPlayer(p Program) *Player { return &Player{prog: p} }

// Done reports whether every directive has fired.
func (pl *Player) Done() bool { return pl.next >= len(pl.prog) }

// Remaining returns the count of unfired directives.
func (pl *Player) Remaining() int { return len(pl.prog) - pl.next }

// Tick fires every directive scheduled at or before `now`, in order.
func (pl *Player) Tick(now int64, fire func(Directive)) {
	for pl.next < len(pl.prog) && pl.prog[pl.next].Cycle <= now {
		fire(pl.prog[pl.next])
		pl.next++
	}
}
