package trace

// Program generators: the canned "compiler outputs" for classic
// message-passing kernels. The paper leaves CARP's compiler support as
// future work; these generators play that role for the kernels whose
// communication structure a compiler can statically know. They are
// deliberately decoupled from the topology package — callers supply a
// neighbour function — so they can also script irregular node sets.

import "fmt"

// Stencil emits an iterative halo-exchange program: open a circuit to every
// neighbour, stream `iters` rounds of `haloFlits`-long messages spaced `gap`
// cycles apart, close everything afterwards. Neighbour lists come from the
// caller (e.g. wave.Simulator.Neighbors).
func Stencil(nodes int, neighbors func(int) []int, iters, haloFlits int, gap int64) (Program, error) {
	if nodes < 1 || iters < 1 || haloFlits < 1 || gap < 1 {
		return nil, fmt.Errorf("trace: invalid stencil parameters")
	}
	var p Program
	for n := 0; n < nodes; n++ {
		for _, nb := range neighbors(n) {
			p = append(p, Directive{Cycle: 0, Op: Open, Src: n, Dst: nb})
		}
	}
	for it := 0; it < iters; it++ {
		t := int64(1) + int64(it)*gap
		for n := 0; n < nodes; n++ {
			for _, nb := range neighbors(n) {
				p = append(p, Directive{Cycle: t, Op: Send, Src: n, Dst: nb, Flits: haloFlits})
			}
		}
	}
	end := int64(1) + int64(iters)*gap
	for n := 0; n < nodes; n++ {
		for _, nb := range neighbors(n) {
			p = append(p, Directive{Cycle: end, Op: Close, Src: n, Dst: nb})
		}
	}
	p.Sort()
	return p, nil
}

// Ring emits a ring-shift program: node i streams `rounds` messages of
// `flits` to node (i+1) mod nodes over a held-open circuit — the classic
// systolic pattern the paper's reference [3] (iWarp) motivates.
func Ring(nodes, rounds, flits int, gap int64) (Program, error) {
	if nodes < 2 || rounds < 1 || flits < 1 || gap < 1 {
		return nil, fmt.Errorf("trace: invalid ring parameters")
	}
	var p Program
	for n := 0; n < nodes; n++ {
		p = append(p, Directive{Cycle: 0, Op: Open, Src: n, Dst: (n + 1) % nodes})
	}
	for r := 0; r < rounds; r++ {
		t := int64(1) + int64(r)*gap
		for n := 0; n < nodes; n++ {
			p = append(p, Directive{Cycle: t, Op: Send, Src: n, Dst: (n + 1) % nodes, Flits: flits})
		}
	}
	end := int64(1) + int64(rounds)*gap
	for n := 0; n < nodes; n++ {
		p = append(p, Directive{Cycle: end, Op: Close, Src: n, Dst: (n + 1) % nodes})
	}
	p.Sort()
	return p, nil
}

// AllToAll emits a staged personalized all-to-all: in stage s, node i
// exchanges with partner i XOR s (the hypercube-style pairing), opening the
// circuit just before the exchange and closing it right after — circuits are
// a scarce resource, so the compiler time-multiplexes them (the "global
// optimization" the paper says CARP enables).
func AllToAll(nodes, flits int, stageGap int64) (Program, error) {
	if nodes < 2 || nodes&(nodes-1) != 0 {
		return nil, fmt.Errorf("trace: all-to-all needs a power-of-two node count, got %d", nodes)
	}
	if flits < 1 || stageGap < 2 {
		return nil, fmt.Errorf("trace: invalid all-to-all parameters")
	}
	var p Program
	for s := 1; s < nodes; s++ {
		t := int64(s-1) * stageGap
		for n := 0; n < nodes; n++ {
			partner := n ^ s
			p = append(p, Directive{Cycle: t, Op: Open, Src: n, Dst: partner})
			p = append(p, Directive{Cycle: t + 1, Op: Send, Src: n, Dst: partner, Flits: flits})
			p = append(p, Directive{Cycle: t + stageGap - 1, Op: Close, Src: n, Dst: partner})
		}
	}
	p.Sort()
	return p, nil
}
