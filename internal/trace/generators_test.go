package trace

import "testing"

func lineNeighbors(nodes int) func(int) []int {
	return func(n int) []int {
		var out []int
		if n > 0 {
			out = append(out, n-1)
		}
		if n < nodes-1 {
			out = append(out, n+1)
		}
		return out
	}
}

func countOps(p Program) (opens, sends, closes int) {
	for _, d := range p {
		switch d.Op {
		case Open:
			opens++
		case Send:
			sends++
		case Close:
			closes++
		}
	}
	return
}

func TestStencilGenerator(t *testing.T) {
	const nodes, iters = 4, 3
	p, err := Stencil(nodes, lineNeighbors(nodes), iters, 32, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(nodes); err != nil {
		t.Fatal(err)
	}
	// Line of 4: 2*3 = 6 directed neighbour pairs.
	opens, sends, closes := countOps(p)
	if opens != 6 || closes != 6 {
		t.Fatalf("opens=%d closes=%d", opens, closes)
	}
	if sends != 6*iters {
		t.Fatalf("sends=%d", sends)
	}
	// Opens at cycle 0, closes last.
	if p[0].Op != Open || p[len(p)-1].Op != Close {
		t.Fatal("order wrong")
	}
}

func TestStencilValidation(t *testing.T) {
	if _, err := Stencil(0, lineNeighbors(1), 1, 1, 1); err == nil {
		t.Fatal("bad nodes accepted")
	}
	if _, err := Stencil(4, lineNeighbors(4), 1, 1, 0); err == nil {
		t.Fatal("bad gap accepted")
	}
}

func TestRingGenerator(t *testing.T) {
	p, err := Ring(6, 4, 16, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(6); err != nil {
		t.Fatal(err)
	}
	opens, sends, closes := countOps(p)
	if opens != 6 || closes != 6 || sends != 24 {
		t.Fatalf("ops: %d %d %d", opens, sends, closes)
	}
	// Every send goes to the successor.
	for _, d := range p {
		if d.Op == Send && d.Dst != (d.Src+1)%6 {
			t.Fatalf("ring send %d -> %d", d.Src, d.Dst)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := Ring(1, 1, 1, 1); err == nil {
		t.Fatal("1-node ring accepted")
	}
}

func TestAllToAllGenerator(t *testing.T) {
	const nodes = 8
	p, err := AllToAll(nodes, 16, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(nodes); err != nil {
		t.Fatal(err)
	}
	opens, sends, closes := countOps(p)
	want := nodes * (nodes - 1) // each node exchanges with every other once
	if sends != want || opens != want || closes != want {
		t.Fatalf("ops: %d %d %d, want %d each", opens, sends, closes, want)
	}
	// Pairing symmetry: in every stage each node sends exactly once, to its
	// XOR partner.
	seen := map[[2]int]bool{}
	for _, d := range p {
		if d.Op != Send {
			continue
		}
		key := [2]int{d.Src, d.Dst}
		if seen[key] {
			t.Fatalf("duplicate exchange %v", key)
		}
		seen[key] = true
	}
}

func TestAllToAllValidation(t *testing.T) {
	if _, err := AllToAll(6, 16, 100); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, err := AllToAll(8, 16, 1); err == nil {
		t.Fatal("tiny stage gap accepted")
	}
}

// TestGeneratedProgramsRunThroughPlayer round-trips a generated program
// through encode/parse and plays it to completion.
func TestGeneratedProgramsRunThroughPlayer(t *testing.T) {
	p, err := Ring(4, 2, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlayer(p)
	fired := 0
	for now := int64(0); !pl.Done(); now++ {
		pl.Tick(now, func(Directive) { fired++ })
		if now > 1000 {
			t.Fatal("player never finished")
		}
	}
	if fired != len(p) {
		t.Fatalf("fired %d of %d", fired, len(p))
	}
}
