package core

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/flit"
	"repro/internal/pcs"
	"repro/internal/topology"
)

func newFabric(t *testing.T, topo topology.Topology, prm Params, hooks Hooks) *Fabric {
	t.Helper()
	f, err := New(topo, prm, hooks)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func run(f *Fabric, from *int64, cycles int64) {
	for i := int64(0); i < cycles; i++ {
		f.Cycle(*from)
		*from++
	}
}

// establish sets up a circuit src->dst on switch sw and registers the cache
// entry the way the protocol layer does.
func establish(t *testing.T, f *Fabric, now *int64, src, dst topology.Node, sw int) *circuit.Entry {
	t.Helper()
	entry := &circuit.Entry{Dest: dst, Switch: sw, InitialSwitch: sw, State: circuit.Setting}
	if err := f.Cache(src).Insert(entry); err != nil {
		t.Fatal(err)
	}
	var res *pcs.SetupResult
	f.LaunchProbe(src, dst, sw, false, func(r pcs.SetupResult) { res = &r })
	for i := 0; i < 200 && res == nil; i++ {
		f.Cycle(*now)
		*now++
	}
	if res == nil || !res.OK {
		t.Fatalf("setup failed: %+v", res)
	}
	entry.ID = res.Circuit
	entry.Channel = res.First.Link
	entry.Switch = res.First.Switch
	entry.State = circuit.Established
	return entry
}

func TestParamsValidation(t *testing.T) {
	topo := topology.MustCube([]int{4, 4}, false)
	p := DefaultParams()
	p.WaveClockMult = 0
	if _, err := New(topo, p, Hooks{}); err == nil {
		t.Fatal("zero clock mult accepted")
	}
	p = DefaultParams()
	p.CacheCapacity = 0
	if _, err := New(topo, p, Hooks{}); err == nil {
		t.Fatal("zero cache capacity accepted")
	}
	p = DefaultParams()
	p.Routing = "bogus"
	if _, err := New(topo, p, Hooks{}); err == nil {
		t.Fatal("bogus routing accepted")
	}
	p = DefaultParams()
	p.ReplacePolicy = "bogus"
	if _, err := New(topo, p, Hooks{}); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestCircuitRate(t *testing.T) {
	p := DefaultParams() // mult 4, k 2
	if got := p.CircuitRate(); got != 2 {
		t.Fatalf("rate = %g, want 2", got)
	}
}

// TestFig2RouterStructure is the structural reproduction of Figure 2: the
// fabric exposes switch S0 (wormhole engine), k wave switches with the PCS
// control unit, and a Circuit Cache at every node's network interface.
func TestFig2RouterStructure(t *testing.T) {
	topo := topology.MustCube([]int{4, 4}, true)
	prm := DefaultParams()
	f := newFabric(t, topo, prm, Hooks{})
	if f.WH == nil {
		t.Fatal("no wormhole switch S0")
	}
	if f.PCS == nil {
		t.Fatal("no PCS routing control unit")
	}
	// k wave switches: a channel exists for every (link, switch) pair.
	link, _ := topo.OutLink(0, 0, topology.Plus)
	for sw := 0; sw < prm.NumSwitches; sw++ {
		if f.PCS.ChannelStatus(pcs.Channel{Link: link, Switch: sw}) != pcs.Free {
			t.Fatalf("wave channel (link %d, S%d) not present/free", link, sw+1)
		}
	}
	for n := topology.Node(0); int(n) < topo.Nodes(); n++ {
		if f.Cache(n) == nil || f.Cache(n).Capacity() != prm.CacheCapacity {
			t.Fatalf("node %d missing circuit cache", n)
		}
	}
}

func TestWormholePathThroughFabric(t *testing.T) {
	topo := topology.MustCube([]int{4, 4}, false)
	var deliveredAt int64 = -1
	f := newFabric(t, topo, DefaultParams(), Hooks{
		DeliveredWormhole: func(m flit.Message, now int64) { deliveredAt = now },
	})
	f.InjectWormhole(flit.Message{ID: 1, Src: 0, Dst: 15, Len: 8, InjectTime: 0})
	now := int64(0)
	run(f, &now, 100)
	want := int64(topo.Distance(0, 15) + 8 - 1)
	if deliveredAt != want {
		t.Fatalf("wormhole delivery at %d, want %d", deliveredAt, want)
	}
}

func TestCircuitTransferTiming(t *testing.T) {
	// mult=4, k=2 => rate 2 flits/cycle; 6 hops, 128 flits:
	// transfer = ceil(6/4 + 128/2) = ceil(65.5) = 66 cycles; ack 6 more.
	topo := topology.MustCube([]int{4, 4}, false)
	var deliveredAt int64 = -1
	f := newFabric(t, topo, DefaultParams(), Hooks{
		DeliveredCircuit: func(m flit.Message, now int64) { deliveredAt = now },
	})
	now := int64(0)
	entry := establish(t, f, &now, 0, 15, 0)

	idleAt := int64(-1)
	start := f.Now() // SendOnCircuit timestamps from the last executed cycle
	f.SendOnCircuit(entry, flit.Message{ID: 2, Src: 0, Dst: 15, Len: 128, InjectTime: start}, func() { idleAt = now })
	if !entry.InUse {
		t.Fatal("In-use bit not set during transfer")
	}
	if f.TransfersInFlight() != 1 {
		t.Fatal("transfer not tracked")
	}
	run(f, &now, 200)
	if got, want := deliveredAt-start, int64(66); got != want {
		t.Fatalf("transfer latency = %d, want %d", got, want)
	}
	if got, want := idleAt-start, int64(66+6); got != want {
		t.Fatalf("in-use clear = %d, want %d (transfer + ack)", got, want)
	}
	if entry.InUse {
		t.Fatal("In-use bit stuck")
	}
	if f.CircuitMsgsDelivered != 1 || f.CircuitFlitsDelivered != 128 {
		t.Fatalf("counters: %d msgs %d flits", f.CircuitMsgsDelivered, f.CircuitFlitsDelivered)
	}
}

func TestWindowThrottlesTransfer(t *testing.T) {
	// mult=4, k=2 => rate 2; 6 hops => fill 1.5, ack 6, rtt 7.5 cycles.
	// Window 5 flits: effective rate 5/7.5 = 0.667 < 2, so a 120-flit
	// message takes ceil(1.5 + 120/0.667) = 182 cycles instead of
	// ceil(1.5 + 60) = 62.
	topo := topology.MustCube([]int{4, 4}, false)
	prm := DefaultParams()
	prm.WindowFlits = 5
	var deliveredAt int64 = -1
	f := newFabric(t, topo, prm, Hooks{
		DeliveredCircuit: func(m flit.Message, now int64) { deliveredAt = now },
	})
	now := int64(0)
	entry := establish(t, f, &now, 0, 15, 0)
	start := f.Now()
	f.SendOnCircuit(entry, flit.Message{ID: 2, Src: 0, Dst: 15, Len: 120, InjectTime: start}, nil)
	run(f, &now, 400)
	if got, want := deliveredAt-start, int64(182); got != want {
		t.Fatalf("windowed transfer = %d cycles, want %d", got, want)
	}
}

func TestWindowLargerThanBDPIsFree(t *testing.T) {
	// A window above the bandwidth-delay product must not change timing.
	topo := topology.MustCube([]int{4, 4}, false)
	run1 := func(window int) int64 {
		prm := DefaultParams()
		prm.WindowFlits = window
		var deliveredAt int64 = -1
		f := newFabric(t, topo, prm, Hooks{
			DeliveredCircuit: func(m flit.Message, now int64) { deliveredAt = now },
		})
		now := int64(0)
		entry := establish(t, f, &now, 0, 15, 0)
		start := f.Now()
		f.SendOnCircuit(entry, flit.Message{ID: 2, Src: 0, Dst: 15, Len: 64, InjectTime: start}, nil)
		run(f, &now, 300)
		return deliveredAt - start
	}
	if a, b := run1(0), run1(1000); a != b {
		t.Fatalf("huge window changed timing: %d vs %d", a, b)
	}
}

func TestWaveLinkFlitsAccounting(t *testing.T) {
	topo := topology.MustCube([]int{4, 4}, false)
	f := newFabric(t, topo, DefaultParams(), Hooks{})
	now := int64(0)
	entry := establish(t, f, &now, 0, 15, 0)
	c, _ := f.PCS.CircuitByID(entry.ID)
	f.SendOnCircuit(entry, flit.Message{ID: 1, Src: 0, Dst: 15, Len: 50, InjectTime: now}, nil)
	run(f, &now, 300)
	for _, ch := range c.Path {
		if f.WaveLinkFlits[ch.Link] != 50 {
			t.Fatalf("link %d carried %d wave flits, want 50", ch.Link, f.WaveLinkFlits[ch.Link])
		}
	}
}

func TestCircuitBeatsWormholeForLongMessages(t *testing.T) {
	// The headline claim (E1): for >= 128-flit messages, circuit transfer
	// (even including setup) is several times faster than wormhole. The
	// full-width configuration is k=1 ("the simplest version of wave router")
	// where the whole 4x-clocked channel belongs to one circuit.
	topo := topology.MustCube([]int{8, 8}, true)
	prm := DefaultParams()
	prm.NumSwitches = 1
	var whAt, wcAt int64 = -1, -1
	f := newFabric(t, topo, prm, Hooks{
		DeliveredWormhole: func(m flit.Message, now int64) { whAt = now },
		DeliveredCircuit:  func(m flit.Message, now int64) { wcAt = now },
	})
	src, dst := topology.Node(0), topology.Node(36) // (4,4): distance 8
	const L = 256

	now := int64(0)
	f.InjectWormhole(flit.Message{ID: 1, Src: int(src), Dst: int(dst), Len: L, InjectTime: now})
	run(f, &now, 500)
	whLatency := whAt

	setupStart := now
	entry := establish(t, f, &now, src, dst, 0)
	f.SendOnCircuit(entry, flit.Message{ID: 2, Src: int(src), Dst: int(dst), Len: L, InjectTime: setupStart}, nil)
	run(f, &now, 500)
	circuitLatency := wcAt - setupStart // includes the whole setup round trip

	if circuitLatency*3 >= whLatency {
		t.Fatalf("circuit (incl. setup) %d cycles vs wormhole %d: expected at least 3x gain", circuitLatency, whLatency)
	}
}

func TestSendOnCircuitGuards(t *testing.T) {
	topo := topology.MustCube([]int{4, 4}, false)
	f := newFabric(t, topo, DefaultParams(), Hooks{})
	now := int64(0)
	entry := establish(t, f, &now, 0, 15, 0)
	f.SendOnCircuit(entry, flit.Message{ID: 1, Src: 0, Dst: 15, Len: 4, InjectTime: now}, nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SendOnCircuit while in use did not panic")
			}
		}()
		f.SendOnCircuit(entry, flit.Message{ID: 2, Src: 0, Dst: 15, Len: 4, InjectTime: now}, nil)
	}()
	run(f, &now, 200)
	entry.State = circuit.Setting
	defer func() {
		if recover() == nil {
			t.Fatal("SendOnCircuit on non-established did not panic")
		}
	}()
	f.SendOnCircuit(entry, flit.Message{ID: 3, Src: 0, Dst: 15, Len: 4, InjectTime: now}, nil)
}

func TestRequestTeardownIdleCircuit(t *testing.T) {
	topo := topology.MustCube([]int{4, 4}, false)
	freed := 0
	var freedDst topology.Node
	f := newFabric(t, topo, DefaultParams(), Hooks{
		CircuitFreed: func(src, dst topology.Node, id circuit.ID) {
			freed++
			freedDst = dst
			if src != 0 {
				t.Fatalf("freed at wrong source %d", src)
			}
		},
	})
	now := int64(0)
	entry := establish(t, f, &now, 0, 15, 0)
	f.RequestTeardown(0, entry)
	if entry.State != circuit.Releasing {
		t.Fatalf("state = %v, want releasing", entry.State)
	}
	run(f, &now, 50)
	if freed != 1 || freedDst != 15 {
		t.Fatalf("CircuitFreed: %d times, dst %d", freed, freedDst)
	}
	if _, ok := f.Cache(0).Peek(15); ok {
		t.Fatal("cache entry survived teardown")
	}
	if f.PCS.NumCircuits() != 0 {
		t.Fatal("PCS registry not empty")
	}
}

func TestRequestTeardownDefersWhileInUse(t *testing.T) {
	topo := topology.MustCube([]int{4, 4}, false)
	freed := 0
	f := newFabric(t, topo, DefaultParams(), Hooks{
		CircuitFreed: func(src, dst topology.Node, id circuit.ID) { freed++ },
	})
	now := int64(0)
	entry := establish(t, f, &now, 0, 15, 0)
	f.SendOnCircuit(entry, flit.Message{ID: 1, Src: 0, Dst: 15, Len: 64, InjectTime: now}, func() {
		// NI idle handler: honour any deferred release.
		f.MaybeHonourRelease(0, entry)
	})
	f.RequestTeardown(0, entry) // must defer: message in transit
	if entry.State != circuit.Established {
		t.Fatal("teardown did not defer while in use")
	}
	run(f, &now, 10)
	if freed != 0 {
		t.Fatal("circuit freed while message in transit")
	}
	run(f, &now, 300)
	if freed != 1 {
		t.Fatalf("deferred teardown never completed: freed=%d", freed)
	}
}

func TestRemoteReleaseViaForceProbe(t *testing.T) {
	// End-to-end Force flow through the fabric host: a circuit from node 1
	// blocks the only minimal channels; a Force probe from node 0 triggers a
	// release flit, the fabric receives RequestRemoteRelease, tears down the
	// victim, and the probe completes.
	topo := topology.MustCube([]int{4, 2}, false)
	prm := DefaultParams()
	prm.NumSwitches = 1
	prm.MaxMisroutes = 0
	prm.Routing = "dor"
	freed := 0
	f := newFabric(t, topo, prm, Hooks{
		CircuitFreed: func(src, dst topology.Node, id circuit.ID) { freed++ },
	})
	now := int64(0)
	establish(t, f, &now, 1, 3, 0)

	var res *pcs.SetupResult
	f.LaunchProbe(0, 3, 0, true, func(r pcs.SetupResult) { res = &r })
	for i := 0; i < 500 && res == nil; i++ {
		f.Cycle(now)
		now++
	}
	if res == nil || !res.OK {
		t.Fatalf("force probe did not succeed: %+v", res)
	}
	if freed != 1 {
		t.Fatalf("victim circuit not freed: %d", freed)
	}
}

func TestLocalReleaseViaForceProbe(t *testing.T) {
	// The Force probe blocked at its own source picks a victim from the
	// local circuit cache (replacement), not via a release flit.
	topo := topology.MustCube([]int{4, 2}, false)
	prm := DefaultParams()
	prm.NumSwitches = 1
	prm.MaxMisroutes = 0
	prm.Routing = "dor"
	f := newFabric(t, topo, prm, Hooks{})
	now := int64(0)
	// Node 0's own circuit to node 3 occupies the dim-0 channel; its circuit
	// to node 4 (coord (0,1)) occupies the dim-1 channel. Both outputs of
	// node 0 are now busy.
	e3 := establish(t, f, &now, 0, 3, 0)
	e4 := establish(t, f, &now, 0, topo.NodeAt([]int{0, 1}), 0)
	_ = e4

	var res *pcs.SetupResult
	f.LaunchProbe(0, 2, 0, true, func(r pcs.SetupResult) { res = &r })
	for i := 0; i < 500 && res == nil; i++ {
		f.Cycle(now)
		now++
	}
	if res == nil || !res.OK {
		t.Fatalf("force probe failed: %+v", res)
	}
	if e3.State != circuit.Releasing {
		// The probe to node 2 requested the dim-0 channel, held by e3.
		t.Fatalf("local victim not released: %v", e3.State)
	}
	if f.PCS.Ctr.ReleasesSent != 0 {
		t.Fatal("release flit sent for a local victim")
	}
}

func TestDeterministicFabric(t *testing.T) {
	runOnce := func() (int64, int64) {
		topo := topology.MustCube([]int{4, 4}, true)
		var whSum, wcSum int64
		f := newFabric(t, topo, DefaultParams(), Hooks{
			DeliveredWormhole: func(m flit.Message, now int64) { whSum += now },
			DeliveredCircuit:  func(m flit.Message, now int64) { wcSum += now },
		})
		now := int64(0)
		for i := 0; i < 20; i++ {
			f.InjectWormhole(flit.Message{ID: flit.MsgID(i), Src: i % 16, Dst: (i * 7) % 16, Len: 4 + i%9, InjectTime: 0})
		}
		e := establish(t, f, &now, 0, 15, 1)
		f.SendOnCircuit(e, flit.Message{ID: 1000, Src: 0, Dst: 15, Len: 100, InjectTime: now}, nil)
		run(f, &now, 2000)
		return whSum, wcSum
	}
	a1, a2 := runOnce()
	b1, b2 := runOnce()
	if a1 != b1 || a2 != b2 {
		t.Fatalf("fabric not deterministic: (%d,%d) vs (%d,%d)", a1, a2, b1, b2)
	}
}

func TestOldestAgeTracksTransfers(t *testing.T) {
	topo := topology.MustCube([]int{4, 4}, false)
	f := newFabric(t, topo, DefaultParams(), Hooks{})
	now := int64(0)
	entry := establish(t, f, &now, 0, 15, 0)
	f.SendOnCircuit(entry, flit.Message{ID: 5, Src: 0, Dst: 15, Len: 500, InjectTime: now - 7}, nil)
	if got := f.OldestAge(now); got != 7 {
		t.Fatalf("OldestAge = %d, want 7", got)
	}
}
