// Package core assembles the wave router of Figure 2 into a whole-network
// fabric: switch S0 with its wormhole routing control unit (internal/
// wormhole), the wave-pipelined switches S1..Sk with the PCS routing control
// unit (internal/pcs), the per-node Circuit Cache registers (internal/
// circuit), and the wave-pipelined data transfers over established circuits.
//
// The two switching techniques deliberately do not interact — "Each switching
// technique uses its own set of resources (routing control unit, switches and
// channels)" — which is what makes the paper's deadlock proofs compositional,
// and what makes this fabric a thin deterministic scheduler over the two
// engines.
//
// Circuit data transfer model (DESIGN.md substitution table): once a circuit
// is established, a message of L flits streams contention-free at
// WaveClockMult/NumSwitches flits per wormhole cycle (the physical channel is
// split into k narrower channels, clocked WaveClockMult times faster), after
// a pipeline fill of Hops/WaveClockMult cycles; the end-to-end window
// acknowledgment then returns over the control channels at one hop per cycle
// before the In-use bit clears.
package core

import (
	"fmt"
	"math"
	"runtime"

	"repro/internal/circuit"
	"repro/internal/engine"
	"repro/internal/flit"
	"repro/internal/pcs"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/wormhole"
)

// Params configures the wave router fabric. The zero value is invalid; start
// from DefaultParams.
type Params struct {
	// NumVCs is w, the wormhole virtual channels per physical channel.
	NumVCs int
	// BufDepth is the wormhole per-VC buffer depth in flits.
	BufDepth int
	// CreditDelay is the wormhole credit-return delay in cycles (0 = the
	// instantaneous credit path; see wormhole.Params.CreditDelay).
	CreditDelay int
	// RouteDelay is the wormhole per-hop route-computation delay in cycles
	// (see wormhole.Params.RouteDelay).
	RouteDelay int
	// RecoveryTimeout, when positive, enables abort-and-retry deadlock
	// recovery in the wormhole network (see wormhole.RecoveryParams). It is
	// required when Routing is "dor-nodateline" or "vcfree-nolabel", whose
	// dependency graphs are cyclic by design.
	RecoveryTimeout int64
	// Routing selects the wormhole routing function (see routing.Names).
	Routing string
	// NumSwitches is k, the wave-pipelined switches per router.
	NumSwitches int
	// MaxMisroutes is m in the MB-m probe protocol.
	MaxMisroutes int
	// WaveClockMult is the wave-pipelined clock as a multiple of the wormhole
	// clock (the paper's Spice experiments support up to 4).
	WaveClockMult float64
	// CacheCapacity is the number of Circuit Cache entries per node.
	CacheCapacity int
	// ReplacePolicy selects the CLRP replacement algorithm: "lru", "lfu" or
	// "random".
	ReplacePolicy string
	// InitialBufFlits is the endpoint message-buffer size CLRP allocates
	// when a circuit is established without knowing the longest message
	// ("A reasonably large buffer can be allocated", section 2). Messages
	// longer than the current buffer trigger a re-allocation costing
	// ReallocPenalty cycles before the transfer starts. Zero disables the
	// endpoint-buffer model entirely.
	InitialBufFlits int
	// ReallocPenalty is the cycle cost of growing the endpoint buffers.
	ReallocPenalty int64
	// WindowFlits bounds the end-to-end window of circuit transfers: the
	// source may have at most this many unacknowledged flits in flight
	// (paper section 2: "a windowing protocol is implemented. This protocol
	// requires deep delivery buffers"). Zero means buffers deep enough that
	// the window never throttles — the paper's design point.
	WindowFlits int
	// DisableRoutingTable turns off the precomputed (here, dst) routing
	// table (internal/routing.WithTable) and routes every header through the
	// algorithmic implementation. Candidate sequences are identical either
	// way; the flag exists for oracle cross-checks and for memory-constrained
	// runs on topologies below the automatic size gate.
	DisableRoutingTable bool
	// DisableActivityTracking runs the engines as full scans over every port
	// and disables the quiescence fast-forward, making each cycle cost
	// O(network) regardless of load. Results are bit-identical either way;
	// the full scan is the cross-check oracle for the activity-driven engine
	// (see wormhole/activity.go).
	DisableActivityTracking bool
	// Seed drives every random decision in the fabric.
	Seed uint64
	// Workers sets the worker count of the parallel cycle engine
	// (internal/engine). 0 means auto: the fabric measures per-cycle compute
	// work during warmup and upgrades to a pool sized to the load and
	// GOMAXPROCS, staying serial below the break-even (see autoTune* below).
	// 1 forces the serial cycle; higher values run each cycle's compute half
	// concurrently on a fixed-size pool. Results are bit-identical to the
	// serial engine for the same seed at every setting — the worker count
	// changes wall time only. Negative values are rejected by New.
	Workers int
}

// DefaultParams is the baseline configuration of the experiments: w=3 VCs of
// depth 4 (Duato adaptive routing on a torus needs two dateline escape
// classes plus at least one adaptive channel), k=2 wave switches, MB-2
// probes, 4x wave clock, 8-entry LRU circuit caches.
func DefaultParams() Params {
	return Params{
		NumVCs:        3,
		BufDepth:      4,
		Routing:       "duato",
		NumSwitches:   2,
		MaxMisroutes:  2,
		WaveClockMult: 4,
		CacheCapacity: 8,
		ReplacePolicy: "lru",
		Seed:          1,
	}
}

func (p Params) validate() error {
	if p.WaveClockMult <= 0 {
		return fmt.Errorf("core: WaveClockMult must be positive, got %g", p.WaveClockMult)
	}
	if p.CacheCapacity < 1 {
		return fmt.Errorf("core: CacheCapacity must be >= 1, got %d", p.CacheCapacity)
	}
	if p.Workers < 0 {
		return fmt.Errorf("core: Workers must be >= 0 (0 = auto-tune, 1 = serial, N = fixed pool), got %d", p.Workers)
	}
	return nil
}

// Auto-tuner calibration (Workers == 0). The decision must be deterministic
// for a fixed seed and config — so it is driven entirely by
// simulation-deterministic quantities (active wormhole ports, live PCS
// probes) plus host capacity (GOMAXPROCS), never by wall-clock measurement.
// The selected worker count changes wall time only, never results, so the
// choice may differ between hosts without breaking response byte-identity.
const (
	// autoTuneWindow is how many non-quiescent cycles the fabric observes
	// before deciding; autoTuneSettle leading cycles are excluded from the
	// average so the cold-start ramp (an empty network filling up) does not
	// drag the estimate below steady state.
	autoTuneWindow = 512
	autoTuneSettle = 256
	// autoBreakEvenWork is the busy-port-equivalents of per-cycle work each
	// additional worker must bring to beat the pool's two phase barriers.
	autoBreakEvenWork = 192
	// probeWorkWeight converts live PCS probes into busy-port-equivalents: a
	// probe decision (output enumeration, misroute ranking) costs roughly an
	// order of magnitude more than one port's allocate step.
	probeWorkWeight = 8
	// maxAutoWorkers caps the automatic choice; explicit Workers values are
	// not capped.
	maxAutoWorkers = 8
	// perCycleMinWork is the hybrid fallback threshold: an activity-tracked
	// parallel fabric runs any cycle with fewer busy-port-equivalents than
	// perCycleMinWork×workers through the serial path, skipping the barriers
	// (the two paths are bit-identical, so this is pure wall-time routing).
	perCycleMinWork = 64
)

// BufUnlimited marks a circuit whose endpoint buffers are pre-sized for the
// longest message of its set (CARP) — re-allocation never triggers.
const BufUnlimited = 1 << 30

// Descriptor event kinds (engine.Event.Kind). Every steady-state fabric
// event is one of these, dispatched by execEvent from its serialisable
// (Kind, Args) form — which is what lets a snapshot capture the pending
// event queue. Kind 0 is reserved for opaque closure events (ScheduleAt,
// test-only onIdle callbacks); those cannot be snapshotted.
const (
	// evCircuitDeliver: a circuit transfer completes.
	// Args: msgID, src, dst, len, injectTime.
	evCircuitDeliver uint8 = iota + 1
	// evCircuitAck: the end-to-end window acknowledgment returns and the
	// In-use bit clears. Args: src, dst, circuitID.
	evCircuitAck
	// evFaultInject: a dynamic wave-channel fault fires.
	// Args: link, switch, repairDelay.
	evFaultInject
	// evFaultRepair: a faulted channel returns to service. Args: link, switch.
	evFaultRepair
	// evRetry: a protocol-layer probe-retry backoff timer fires.
	// Args: src, dst.
	evRetry
)

// CircuitRate returns the streaming bandwidth of one circuit in flits per
// wormhole cycle.
func (p Params) CircuitRate() float64 { return p.WaveClockMult / float64(p.NumSwitches) }

// Hooks are the fabric's upcalls to the protocol/statistics layer.
type Hooks struct {
	// DeliveredWormhole fires when a wormhole message's tail is consumed.
	DeliveredWormhole func(m flit.Message, now int64)
	// DeliveredCircuit fires when a circuit-switched message fully arrives.
	DeliveredCircuit func(m flit.Message, now int64)
	// CircuitFreed fires when a circuit starting at src toward dst has been
	// fully torn down and its cache entry removed. The NI uses it to re-issue
	// messages that were queued on the dead circuit.
	CircuitFreed func(src, dst topology.Node, id circuit.ID)
	// Progress feeds the watchdog.
	Progress func()
}

// Fabric is the whole-network wave-switching substrate.
type Fabric struct {
	Topo topology.Topology
	Prm  Params
	WH   *wormhole.Engine
	PCS  *pcs.Engine

	// RoutingTable records the routing-table selection outcome (flat,
	// compressed, or algorithmic fallback with the Gated flag). Deliberately
	// not part of Stats: a table-backed run and an algorithmic oracle run
	// must stay stats-identical.
	RoutingTable routing.TableInfo

	hooks  Hooks
	caches []*circuit.Cache
	rng    *sim.RNG

	// Registered protocol-layer handlers for descriptor events: onRetry
	// executes evRetry timers, onCircuitIdle runs when a window ack clears a
	// circuit's In-use bit. Handlers replace per-event closures so pending
	// events serialise (see the ev* kinds above).
	onRetry       func(src, dst topology.Node, now int64)
	onCircuitIdle func(src, dst topology.Node)

	// events holds scheduled fabric actions (circuit deliveries, window
	// acks), sharded by source node; pool is the worker pool of the parallel
	// cycle engine (nil in serial mode).
	events *engine.ShardedEvents
	pool   *engine.Pool
	now    int64

	// Persistent parallel-phase closures (allocated once in enableParallel so
	// Cycle never allocates); engineWorkers is the worker count of whatever
	// engine is currently driving cycles (1 = serial).
	whPhase       func(worker, lo, hi int)
	pcsPhase      func(worker, lo, hi int)
	engineWorkers int

	// Auto-tuner state (Workers == 0): autoTune is true until the decision
	// window closes, tuneCycles counts observed non-quiescent cycles and
	// tuneWork accumulates their busy-port-equivalents.
	autoTune   bool
	tuneCycles int
	tuneWork   int64

	// fastForward enables the quiescent-cycle skip in Cycle (off in the
	// DisableActivityTracking oracle mode).
	fastForward bool

	// transfersInFlight counts circuit messages between send and delivery.
	transfersInFlight int
	// oldestTransfer tracks ages for the watchdog.
	transferInject map[flit.MsgID]int64

	// Counters.
	CircuitFlitsDelivered int64
	CircuitMsgsDelivered  int64
	// Reallocs counts endpoint-buffer re-allocations (CLRP growing pains).
	Reallocs int64
	// WaveLinkFlits counts circuit-carried flits per physical link slot
	// (summed over the k wave channels of the link), for utilization maps.
	WaveLinkFlits []int64
}

// New builds the fabric.
func New(topo topology.Topology, prm Params, hooks Hooks) (*Fabric, error) {
	if err := prm.validate(); err != nil {
		return nil, err
	}
	fn, err := routing.New(prm.Routing, topo, prm.NumVCs)
	if err != nil {
		return nil, err
	}
	tableInfo := routing.TableInfo{Mode: routing.TableAlgorithmic}
	if !prm.DisableRoutingTable {
		// Freeze the routing function into a lookup table: the algorithmic
		// implementation above remains the generator and oracle, the
		// per-cycle hot path becomes a zero-allocation table load — the flat
		// (here, dst) arena under the node gate, the compressed
		// per-dimension table on mega k-ary n-cubes above it. The memoizing
		// wrapper shares one table across identically shaped fabrics, so
		// sweep points and back-to-back server jobs stop paying the build
		// repeatedly. The returned TableInfo records which representation
		// won (or that selection gated out), for the engine report line.
		fn, tableInfo = routing.SelectTableCached(fn, topo, routing.DefaultTableMaxNodes)
	}
	// Event-queue sharding: the shard count never affects pop order (PopDue
	// merges by (at, seq)), so auto mode fixes it at maxAutoWorkers — the
	// later worker decision cannot change event semantics even in principle.
	shards := prm.Workers
	if prm.Workers == 0 {
		shards = maxAutoWorkers
	}
	if shards < 1 {
		shards = 1
	}
	f := &Fabric{
		Topo:           topo,
		Prm:            prm,
		hooks:          hooks,
		rng:            sim.NewRNG(prm.Seed),
		events:         engine.NewShardedEvents(shards),
		transferInject: make(map[flit.MsgID]int64),
		WaveLinkFlits:  make([]int64, topo.NumLinkSlots()),
		fastForward:    !prm.DisableActivityTracking,
		engineWorkers:  1,
		RoutingTable:   tableInfo,
	}
	f.WH, err = wormhole.New(topo, fn, wormhole.Params{NumVCs: prm.NumVCs, BufDepth: prm.BufDepth, CreditDelay: prm.CreditDelay, RouteDelay: prm.RouteDelay, DisableActivityTracking: prm.DisableActivityTracking}, wormhole.Hooks{
		Delivered: func(m flit.Message, now int64) {
			if hooks.DeliveredWormhole != nil {
				hooks.DeliveredWormhole(m, now)
			}
		},
		Progress: f.progress,
	})
	if err != nil {
		return nil, err
	}
	if prm.RecoveryTimeout > 0 {
		if err := f.WH.EnableRecovery(wormhole.RecoveryParams{Timeout: prm.RecoveryTimeout}); err != nil {
			return nil, err
		}
	} else if prm.Routing == "dor-nodateline" || prm.Routing == "vcfree-nolabel" {
		return nil, fmt.Errorf("core: routing %q can deadlock; set RecoveryTimeout to enable abort-and-retry", prm.Routing)
	}
	f.PCS, err = pcs.New(topo, pcs.Params{NumSwitches: prm.NumSwitches, MaxMisroutes: prm.MaxMisroutes}, (*fabricHost)(f))
	if err != nil {
		return nil, err
	}
	// Teardown completions report through this registered handler (the
	// snapshot-safe path; teardownNow uses TeardownNotify): drop the cache
	// entry and let the NI re-issue whatever was queued on the dead circuit.
	f.PCS.SetCircuitFreed(func(src, dst topology.Node, id circuit.ID) {
		f.caches[src].Remove(dst)
		if f.hooks.CircuitFreed != nil {
			f.hooks.CircuitFreed(src, dst, id)
		}
	})
	f.caches = make([]*circuit.Cache, topo.Nodes())
	for i := range f.caches {
		pol, perr := circuit.NewPolicy(prm.ReplacePolicy, f.rng.Split())
		if perr != nil {
			return nil, perr
		}
		f.caches[i] = circuit.NewCache(prm.CacheCapacity, pol)
	}
	switch {
	case prm.Workers > 1:
		f.enableParallel(prm.Workers)
	case prm.Workers == 0 && !prm.DisableActivityTracking:
		// Auto: observe a warmup window, then pick. The full-scan oracle mode
		// is excluded — it exists for cross-checks, and without activity
		// tracking there is no cheap per-cycle work estimate to tune on.
		f.autoTune = true
	}
	return f, nil
}

// enableParallel switches the fabric onto a worker pool of the given size.
// Called at construction for explicit Workers > 1, or mid-run by the
// auto-tuner — the serial and parallel cycle paths are bit-identical, so the
// switch point is invisible in the results.
func (f *Fabric) enableParallel(workers int) {
	f.pool = engine.NewPool(workers)
	f.WH.SetParallel(workers)
	f.PCS.SetParallel(workers)
	f.engineWorkers = workers
	f.whPhase = func(worker, lo, hi int) {
		f.WH.PrepareRange(worker, lo, hi)
	}
	f.pcsPhase = func(worker, lo, hi int) {
		f.PCS.PrepareRange(f.now, worker, lo, hi)
	}
}

// EngineWorkers returns the worker count of the engine currently driving
// cycles: 1 while serial (including the auto-tuner's observation window),
// the pool size once parallel. Deliberately not part of wave.Stats — the
// selection is host-dependent while Stats are bit-identical across hosts
// and worker counts.
func (f *Fabric) EngineWorkers() int { return f.engineWorkers }

// cycleWork estimates this cycle's compute cost in busy-port-equivalents
// from simulation-deterministic state.
func (f *Fabric) cycleWork() int64 {
	return int64(f.WH.ActivePorts() + probeWorkWeight*f.PCS.ActiveProbes())
}

// observeTune accumulates the auto-tuner's warmup window and, once it
// closes, sizes the pool (or decides to stay serial forever).
func (f *Fabric) observeTune() {
	f.tuneCycles++
	if f.tuneCycles <= autoTuneSettle {
		return
	}
	f.tuneWork += f.cycleWork()
	if f.tuneCycles < autoTuneWindow {
		return
	}
	f.autoTune = false
	avg := f.tuneWork / int64(autoTuneWindow-autoTuneSettle)
	workers := int(avg / autoBreakEvenWork)
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	if workers > maxAutoWorkers {
		workers = maxAutoWorkers
	}
	if workers >= 2 {
		f.enableParallel(workers)
	}
}

// Close releases the worker pool. Every parallel fabric must be closed when
// done — the pool's helper goroutines otherwise outlive it. Safe to call
// repeatedly, and a no-op for serial fabrics.
func (f *Fabric) Close() {
	if f.pool != nil {
		f.pool.Close()
	}
}

func (f *Fabric) progress() {
	if f.hooks.Progress != nil {
		f.hooks.Progress()
	}
}

// Cache returns node n's Circuit Cache registers.
func (f *Fabric) Cache(n topology.Node) *circuit.Cache { return f.caches[n] }

// Now returns the fabric's view of the current cycle.
func (f *Fabric) Now() int64 { return f.now }

// Cycle advances everything by one wormhole clock.
//
// In parallel mode the cycle is split: after the serial event commit and the
// wormhole prologue, the compute half of both engines — the wormhole port
// scan with its route computations, and the PCS probe decisions — fans out
// over the worker pool (one barrier each); the engines then commit serially
// in exactly the serial engine's effect order, so the outcome is
// bit-identical to Workers=1 for the same seed (see internal/engine).
func (f *Fabric) Cycle(now int64) {
	f.now = now
	for _, ev := range f.events.PopDue(now) {
		if ev.Kind != 0 {
			f.execEvent(ev.Kind, ev.Args, now)
		} else {
			ev.Fn(now)
		}
		f.progress()
	}
	if f.fastForward && f.WH.InFlight() == 0 && f.PCS.Idle() {
		// Quiescent cycle: no wormhole message holds any resource (so every
		// port guard fails) and the PCS engine has no control traffic. A full
		// Cycle would change nothing but the clocks and the rotating
		// arbitration offset, so advance those directly. Pending delayed
		// credits stay queued — the next non-quiescent cycle's drainCredits
		// applies everything due before any allocation reads the counters.
		f.WH.SkipCycles(1, now)
		f.PCS.SkipTo(now)
		return
	}
	if f.autoTune {
		f.observeTune()
	}
	if f.pool == nil || !f.parallelWorthIt() {
		f.WH.Cycle(now)
		f.PCS.Cycle(now)
		return
	}
	f.WH.BeginCycle(now)
	f.pool.Run(f.WH.NumPorts(), 256, f.whPhase)
	f.pool.Run(f.PCS.PrepareCount(), 8, f.pcsPhase)
	f.WH.CommitCycle(now)
	f.PCS.CommitCycle(now)
}

// parallelWorthIt is the per-cycle half of the tuning story: even a
// well-sized pool loses on cycles with little ready work, where the two
// phase barriers dwarf the compute. Activity-tracked fabrics route such
// cycles through the serial path — bit-identical by the engine contract, so
// this is pure wall-time routing on simulation-deterministic state. Without
// activity tracking (the oracle mode) there is no cheap work estimate and a
// configured pool always runs, keeping the oracle's parallel coverage.
func (f *Fabric) parallelWorthIt() bool {
	if !f.fastForward {
		return true
	}
	return f.cycleWork() >= perCycleMinWork*int64(f.pool.Workers())
}

// Quiescent reports whether both engines are at rest: no wormhole message
// holds any resource and the PCS engine carries no control traffic. A
// quiescent fabric's Cycle can only do work through scheduled events
// (NextEventAt) or external injections; everything in between is dead time
// that SkipCycles may jump. Always false in DisableActivityTracking oracle
// mode so cross-checks run every cycle for real.
func (f *Fabric) Quiescent() bool {
	return f.fastForward && f.WH.InFlight() == 0 && f.PCS.Idle()
}

// NextEventAt returns the cycle of the earliest scheduled fabric event
// (circuit delivery or window ack), or ok=false when none is pending.
func (f *Fabric) NextEventAt() (int64, bool) { return f.events.NextAt() }

// SkipCycles fast-forwards the fabric over n quiescent cycles ending at cycle
// lastNow (i.e. the cycles lastNow-n+1 .. lastNow never run). The caller must
// have observed Quiescent() and must not skip past the next scheduled event.
func (f *Fabric) SkipCycles(n int64, lastNow int64) {
	f.now = lastNow
	f.WH.SkipCycles(n, lastNow)
	f.PCS.SkipTo(lastNow)
}

// schedule queues fn to run at cycle `at` (at must be > now) on the shard of
// node n.
func (f *Fabric) schedule(n topology.Node, at int64, fn func(now int64)) {
	f.events.Schedule(int(n), at, fn)
}

// execEvent dispatches one descriptor event (see the ev* kind constants).
func (f *Fabric) execEvent(kind uint8, args [engine.NumEventArgs]int64, now int64) {
	switch kind {
	case evCircuitDeliver:
		m := flit.Message{
			ID:         flit.MsgID(args[0]),
			Src:        int(args[1]),
			Dst:        int(args[2]),
			Len:        int(args[3]),
			InjectTime: args[4],
		}
		f.transfersInFlight--
		delete(f.transferInject, m.ID)
		f.CircuitMsgsDelivered++
		f.CircuitFlitsDelivered += int64(m.Len)
		if f.hooks.DeliveredCircuit != nil {
			f.hooks.DeliveredCircuit(m, now)
		}
	case evCircuitAck:
		src, dst := topology.Node(args[0]), topology.Node(args[1])
		if entry, ok := f.caches[src].Peek(dst); ok && entry.ID == circuit.ID(args[2]) {
			entry.InUse = false
		}
		if f.onCircuitIdle != nil {
			f.onCircuitIdle(src, dst)
		}
	case evFaultInject:
		ch := pcs.Channel{Link: topology.LinkID(args[0]), Switch: int(args[1])}
		f.PCS.InjectDynamicFault(ch)
		if repair := args[2]; repair > 0 {
			l, _ := f.Topo.LinkByID(ch.Link)
			f.events.ScheduleKind(int(l.From), now+repair, evFaultRepair,
				[engine.NumEventArgs]int64{args[0], args[1]})
		}
	case evFaultRepair:
		f.PCS.RepairFault(pcs.Channel{Link: topology.LinkID(args[0]), Switch: int(args[1])})
	case evRetry:
		if f.onRetry != nil {
			f.onRetry(topology.Node(args[0]), topology.Node(args[1]), now)
		}
	default:
		panic(fmt.Sprintf("core: unknown event kind %d", kind))
	}
}

// SetRetryHandler registers the protocol layer's executor for evRetry
// timers scheduled through ScheduleRetry.
func (f *Fabric) SetRetryHandler(fn func(src, dst topology.Node, now int64)) { f.onRetry = fn }

// SetCircuitIdleHandler registers the protocol layer's executor run when a
// window acknowledgment clears a circuit's In-use bit.
func (f *Fabric) SetCircuitIdleHandler(fn func(src, dst topology.Node)) { f.onCircuitIdle = fn }

// ScheduleRetry queues a probe-retry timer for the (src, dst) pair at cycle
// `at` (strictly in the future); the registered retry handler executes it.
// Unlike ScheduleAt's closures, retry timers serialise with the snapshot.
func (f *Fabric) ScheduleRetry(src, dst topology.Node, at int64) {
	if at <= f.now {
		panic(fmt.Sprintf("core: ScheduleRetry(%d) is not in the future (now %d)", at, f.now))
	}
	f.events.ScheduleKind(int(src), at, evRetry,
		[engine.NumEventArgs]int64{int64(src), int64(dst)})
}

// ScheduleAt queues fn to run at cycle `at` (which must be strictly in the
// future) on node n's shard of the event queue. The protocol layer uses it
// for deterministic timers (probe-retry backoff); scheduled work is visible
// to NextEventAt, so the quiescence fast-forward stops at it instead of
// jumping past.
func (f *Fabric) ScheduleAt(n topology.Node, at int64, fn func(now int64)) {
	if at <= f.now {
		panic(fmt.Sprintf("core: ScheduleAt(%d) is not in the future (now %d)", at, f.now))
	}
	f.schedule(n, at, fn)
}

// ScheduleFault arms one dynamic wave-channel fault: ch fails at cycle `at`;
// when repair > 0 the channel returns to service repair cycles after the
// injection. Faults ride the sharded event queue (shard = the link's source
// node), so injection commits in the serial event phase of the owning cycle
// — deterministic across worker counts — and NextEventAt keeps the
// quiescence fast-forward from skipping over a scheduled fault.
func (f *Fabric) ScheduleFault(at int64, ch pcs.Channel, repair int64) error {
	if at <= f.now {
		return fmt.Errorf("core: fault at cycle %d is not in the future (now %d)", at, f.now)
	}
	if repair < 0 {
		return fmt.Errorf("core: fault repair delay must be >= 0, got %d", repair)
	}
	l, ok := f.Topo.LinkByID(ch.Link)
	if !ok {
		return fmt.Errorf("core: fault on nonexistent link %d", ch.Link)
	}
	if ch.Switch < 0 || ch.Switch >= f.Prm.NumSwitches {
		return fmt.Errorf("core: fault on switch %d out of range (0..%d)", ch.Switch, f.Prm.NumSwitches-1)
	}
	f.events.ScheduleKind(int(l.From), at, evFaultInject,
		[engine.NumEventArgs]int64{int64(ch.Link), int64(ch.Switch), repair})
	return nil
}

// InjectWormhole sends a message through switch S0.
func (f *Fabric) InjectWormhole(m flit.Message) { f.WH.Inject(m) }

// LaunchProbe starts a circuit-setup attempt (see pcs.Engine.LaunchProbe).
func (f *Fabric) LaunchProbe(src, dst topology.Node, sw int, force bool, done func(pcs.SetupResult)) {
	f.PCS.LaunchProbe(src, dst, sw, force, done)
}

// LaunchProbeTagged starts a circuit-setup attempt whose completion reports
// through the handler registered with SetProbeDone, carrying tag — the
// snapshot-safe launch path (see pcs.Engine.LaunchProbeTagged).
func (f *Fabric) LaunchProbeTagged(src, dst topology.Node, sw int, force bool, tag int64) {
	f.PCS.LaunchProbeTagged(src, dst, sw, force, tag)
}

// SetProbeDone registers the completion handler for tagged probes.
func (f *Fabric) SetProbeDone(fn func(src, dst topology.Node, sw int, force bool, tag int64, res pcs.SetupResult)) {
	f.PCS.SetProbeDone(fn)
}

// SendOnCircuit streams message m over the established circuit recorded in
// entry. onIdle fires when the end-to-end acknowledgment returns and the
// In-use bit clears (the NI then sends the next queued message or honours a
// pending release). The caller must ensure the entry is Established and not
// InUse.
//
// When the endpoint-buffer model is enabled (InitialBufFlits > 0), a message
// longer than the circuit's current buffers first pays ReallocPenalty cycles
// while the buffers grow ("buffers may have the be re-allocated for longer
// messages", section 2).
func (f *Fabric) SendOnCircuit(entry *circuit.Entry, m flit.Message, onIdle func()) {
	if entry.State != circuit.Established {
		panic("core: SendOnCircuit on non-established circuit")
	}
	if entry.InUse {
		panic("core: SendOnCircuit while circuit in use")
	}
	c, ok := f.PCS.CircuitByID(entry.ID)
	if !ok {
		panic(fmt.Sprintf("core: circuit %d missing from PCS registry", entry.ID))
	}
	var setupDelay int64
	if f.Prm.InitialBufFlits > 0 && entry.BufFlits < m.Len {
		// CARP entries carry BufUnlimited and never re-allocate.
		setupDelay = f.Prm.ReallocPenalty
		f.Reallocs++
		entry.BufFlits = m.Len
	}
	hops := len(c.Path)
	rate := f.Prm.CircuitRate()
	fill := float64(hops) / f.Prm.WaveClockMult
	// End-to-end window: with at most W unacknowledged flits, the sustained
	// rate is bounded by W per round trip (pipeline fill down plus the
	// acknowledgment returning over the control channels at one hop/cycle).
	if w := f.Prm.WindowFlits; w > 0 {
		rtt := fill + float64(hops)
		if wRate := float64(w) / rtt; wRate < rate {
			rate = wRate
		}
	}
	transfer := int64(math.Ceil(fill + float64(m.Len)/rate))
	if transfer < 1 {
		transfer = 1
	}
	deliverAt := f.now + setupDelay + transfer
	ackAt := deliverAt + int64(hops) // window ack over control channels

	entry.InUse = true
	entry.Touch(f.now)
	f.transfersInFlight++
	f.transferInject[m.ID] = m.InjectTime
	for _, ch := range c.Path {
		f.WaveLinkFlits[ch.Link] += int64(m.Len)
	}

	f.events.ScheduleKind(m.Src, deliverAt, evCircuitDeliver,
		[engine.NumEventArgs]int64{int64(m.ID), int64(m.Src), int64(m.Dst), int64(m.Len), m.InjectTime})
	if onIdle == nil {
		// Protocol path: the ack event clears the In-use bit (guarded by the
		// circuit ID, in case the entry was replaced meanwhile) and fires the
		// registered circuit-idle handler. Fully descriptive, so an ack in
		// flight survives a snapshot.
		f.events.ScheduleKind(m.Src, ackAt, evCircuitAck,
			[engine.NumEventArgs]int64{int64(m.Src), int64(entry.Dest), int64(entry.ID)})
	} else {
		// Test path: a caller-supplied closure pins this event to the live
		// entry object; such an event blocks EncodeState.
		f.schedule(topology.Node(m.Src), ackAt, func(int64) {
			entry.InUse = false
			onIdle()
		})
	}
}

// TransfersInFlight returns circuit messages between send and delivery.
func (f *Fabric) TransfersInFlight() int { return f.transfersInFlight }

// OldestAge returns the age of the oldest undelivered message in either
// substrate (the NI layer adds queue ages on top).
func (f *Fabric) OldestAge(now int64) int64 {
	oldest := f.WH.OldestAge(now)
	for _, t := range f.transferInject {
		if age := now - t; age > oldest {
			oldest = age
		}
	}
	return oldest
}

// RequestTeardown initiates release of the circuit behind a cache entry at
// node src, honouring the In-use bit: an in-use circuit is marked and torn
// down when the acknowledgment clears it. Safe to call repeatedly.
func (f *Fabric) RequestTeardown(src topology.Node, entry *circuit.Entry) {
	entry.ReleaseRequested = true
	if entry.InUse || entry.State != circuit.Established {
		return // the onIdle/ack path or setup completion will resume this
	}
	f.teardownNow(src, entry)
}

// teardownNow starts the teardown control flit for an idle established
// entry. Completion reports through the CircuitFreed handler registered at
// construction (removing the cache entry and notifying the NI), so a
// teardown in flight survives a snapshot.
func (f *Fabric) teardownNow(src topology.Node, entry *circuit.Entry) {
	if entry.State == circuit.Releasing {
		return
	}
	entry.State = circuit.Releasing
	f.PCS.TeardownNotify(entry.ID)
}

// MaybeHonourRelease completes a deferred release once a circuit goes idle;
// the NI calls it from its onIdle handler. It returns true if a teardown was
// started (the caller must stop using the entry).
func (f *Fabric) MaybeHonourRelease(src topology.Node, entry *circuit.Entry) bool {
	if entry.ReleaseRequested && !entry.InUse && entry.State == circuit.Established {
		f.teardownNow(src, entry)
		return true
	}
	return entry.State == circuit.Releasing
}

// ---------------------------------------------------------------------------
// pcs.Host implementation. Defined on a distinct named type so the Host
// methods don't pollute the Fabric's public API surface.

type fabricHost Fabric

// RequestLocalRelease implements pcs.Host: the Force-phase preference for
// victims among circuits starting at the blocked node.
func (h *fabricHost) RequestLocalRelease(n topology.Node, wanted func(pcs.Channel) bool) (pcs.Channel, bool) {
	f := (*Fabric)(h)
	cache := f.caches[n]
	victim := cache.VictimUsingChannel(func(link topology.LinkID, sw int) bool {
		return wanted(pcs.Channel{Link: link, Switch: sw})
	})
	if victim == nil {
		return pcs.Channel{}, false
	}
	ch := pcs.Channel{Link: victim.Channel, Switch: victim.Switch}
	f.RequestTeardown(n, victim)
	return ch, true
}

// RequestRemoteRelease implements pcs.Host: a release control flit reached
// the source node of circuit id.
func (h *fabricHost) RequestRemoteRelease(id circuit.ID) {
	f := (*Fabric)(h)
	c, ok := f.PCS.CircuitByID(id)
	if !ok {
		return // torn down while the flit was in flight
	}
	entry, ok := f.caches[c.Src].Peek(c.Dst)
	if !ok || entry.ID != id {
		return // cache entry already replaced
	}
	f.RequestTeardown(c.Src, entry)
}

// Progress implements pcs.Host.
func (h *fabricHost) Progress() { (*Fabric)(h).progress() }
