package core

// Snapshot support. The fabric serialises its own mutable state — the RNG,
// the pending event queue (descriptor events only), the auto-tuner window,
// circuit-transfer bookkeeping and counters — and delegates to the wormhole
// engine, the PCS engine and every per-node Circuit Cache. Restoring into a
// fabric built from the identical Params and topology reproduces the
// original bit for bit; subsequent cycles are indistinguishable from an
// uninterrupted run.

import (
	"fmt"
	"sort"

	"repro/internal/flit"
	"repro/internal/snapshot"
)

// EncodeState writes the complete fabric state. It must be called between
// cycles. It errors when any pending event or PCS work item carries a
// closure (ScheduleAt timers, test-only callbacks).
func (f *Fabric) EncodeState(w *snapshot.Writer) error {
	w.I64(f.now)
	w.U64(f.rng.State())

	w.Bool(f.autoTune)
	w.Int(f.tuneCycles)
	w.I64(f.tuneWork)
	w.Int(f.engineWorkers)

	w.Int(f.transfersInFlight)
	ids := make([]flit.MsgID, 0, len(f.transferInject))
	for id := range f.transferInject {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.I64(int64(id))
		w.I64(f.transferInject[id])
	}

	w.I64(f.CircuitFlitsDelivered)
	w.I64(f.CircuitMsgsDelivered)
	w.I64(f.Reallocs)
	w.U32(uint32(len(f.WaveLinkFlits)))
	for _, v := range f.WaveLinkFlits {
		w.I64(v)
	}

	if err := f.events.EncodeState(w); err != nil {
		return err
	}
	if err := f.WH.EncodeState(w); err != nil {
		return err
	}
	if err := f.PCS.EncodeState(w); err != nil {
		return err
	}
	for _, c := range f.caches {
		if err := c.EncodeState(w); err != nil {
			return err
		}
	}
	return w.Err()
}

// DecodeState restores state written by EncodeState into a fabric built
// with the same topology and Params. When the snapshot was taken from a
// parallel run (engine workers > 1) and this fabric is still serial, the
// pool is brought up to the recorded size — results are bit-identical at
// any worker count, so this only reproduces the original's wall-time shape.
func (f *Fabric) DecodeState(r *snapshot.Reader) error {
	f.now = r.I64()
	f.rng.Seed(r.U64())

	f.autoTune = r.Bool()
	f.tuneCycles = r.Int()
	f.tuneWork = r.I64()
	workers := r.Int()

	f.transfersInFlight = r.Int()
	f.transferInject = make(map[flit.MsgID]int64)
	nt := r.Count(1 << 26)
	if r.Err() != nil {
		return r.Err()
	}
	for i := 0; i < nt; i++ {
		id := flit.MsgID(r.I64())
		f.transferInject[id] = r.I64()
	}

	f.CircuitFlitsDelivered = r.I64()
	f.CircuitMsgsDelivered = r.I64()
	f.Reallocs = r.I64()
	nw := r.Count(1 << 26)
	if nw != len(f.WaveLinkFlits) {
		return fmt.Errorf("core: snapshot has %d link slots, fabric has %d (topology mismatch)", nw, len(f.WaveLinkFlits))
	}
	for i := range f.WaveLinkFlits {
		f.WaveLinkFlits[i] = r.I64()
	}

	if err := f.events.DecodeState(r); err != nil {
		return err
	}
	if workers > 1 && f.pool == nil {
		f.enableParallel(workers)
	}
	if err := f.WH.DecodeState(r); err != nil {
		return err
	}
	if err := f.PCS.DecodeState(r); err != nil {
		return err
	}
	for _, c := range f.caches {
		if err := c.DecodeState(r); err != nil {
			return err
		}
	}
	return r.Err()
}
