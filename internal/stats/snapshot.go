package stats

// Snapshot support for the run collector. Series serialise their samples in
// current order together with the running float sum — the sum is an
// accumulated value whose rounding depends on addition order, so it must
// round-trip bit-exactly rather than be recomputed.

import "repro/internal/snapshot"

// EncodeState writes the series' samples and running sum.
func (s *Series) EncodeState(w *snapshot.Writer) error {
	w.U32(uint32(len(s.samples)))
	for _, v := range s.samples {
		w.F64(v)
	}
	w.F64(s.sum)
	return w.Err()
}

// DecodeState restores state written by EncodeState.
func (s *Series) DecodeState(r *snapshot.Reader) error {
	n := r.Count(1 << 26)
	if r.Err() != nil {
		return r.Err()
	}
	s.samples = make([]float64, n)
	for i := range s.samples {
		s.samples[i] = r.F64()
	}
	s.sorted = false
	s.sum = r.F64()
	return r.Err()
}

// EncodeState writes the run's counters, window bounds and latency series.
func (r *Run) EncodeState(w *snapshot.Writer) error {
	w.I64(r.Warmup)
	w.I64(r.FlitsDelivered)
	w.I64(r.MsgsDelivered)
	w.I64(r.start)
	w.I64(r.end)
	if err := r.Latency.EncodeState(w); err != nil {
		return err
	}
	if err := r.CircuitLatency.EncodeState(w); err != nil {
		return err
	}
	return r.WormholeLatency.EncodeState(w)
}

// DecodeState restores state written by EncodeState.
func (r *Run) DecodeState(rd *snapshot.Reader) error {
	r.Warmup = rd.I64()
	r.FlitsDelivered = rd.I64()
	r.MsgsDelivered = rd.I64()
	r.start = rd.I64()
	r.end = rd.I64()
	if err := r.Latency.DecodeState(rd); err != nil {
		return err
	}
	if err := r.CircuitLatency.DecodeState(rd); err != nil {
		return err
	}
	return r.WormholeLatency.DecodeState(rd)
}
