// Package stats collects and summarises simulation measurements: message
// latency (with warm-up exclusion), accepted throughput, and distribution
// summaries (mean, percentiles, histogram) for the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series accumulates scalar samples and answers distribution queries.
type Series struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Add appends a sample.
func (s *Series) Add(v float64) {
	s.samples = append(s.samples, v)
	s.sorted = false
	s.sum += v
}

// N returns the sample count.
func (s *Series) N() int { return len(s.samples) }

// Mean returns the sample mean (0 with no samples).
func (s *Series) Mean() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Std returns the sample standard deviation.
func (s *Series) Std() float64 {
	n := len(s.samples)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.samples {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// CI95 returns the 95% confidence half-width of the mean (normal
// approximation; 0 with fewer than 2 samples).
func (s *Series) CI95() float64 {
	n := len(s.samples)
	if n < 2 {
		return 0
	}
	return 1.96 * s.Std() / math.Sqrt(float64(n))
}

func (s *Series) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// Percentile returns the p-th percentile (p in [0,100]) by nearest-rank.
// An empty series answers 0 — never an index panic — so callers that
// snapshot before the first sample (e.g. waved's interval-0 progress line)
// get a defined, finite value.
func (s *Series) Percentile(p float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	s.ensureSorted()
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[len(s.samples)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(s.samples)))) - 1
	if rank < 0 {
		rank = 0
	}
	return s.samples[rank]
}

// Min returns the smallest sample (0 with no samples, like Percentile).
func (s *Series) Min() float64 { return s.Percentile(0) }

// Max returns the largest sample (0 with no samples, like Percentile).
func (s *Series) Max() float64 { return s.Percentile(100) }

// Histogram bins samples into `bins` equal-width buckets over [min, max] and
// renders an ASCII bar chart, for the CLI tools.
func (s *Series) Histogram(bins int) string {
	if len(s.samples) == 0 || bins < 1 {
		return "(no samples)"
	}
	s.ensureSorted()
	lo, hi := s.samples[0], s.samples[len(s.samples)-1]
	if hi == lo {
		return fmt.Sprintf("all %d samples = %g", len(s.samples), lo)
	}
	counts := make([]int, bins)
	for _, v := range s.samples {
		b := int((v - lo) / (hi - lo) * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		left := lo + (hi-lo)*float64(i)/float64(bins)
		bar := strings.Repeat("#", int(math.Round(float64(c)/float64(maxC)*40)))
		fmt.Fprintf(&b, "%10.1f | %-40s %d\n", left, bar, c)
	}
	return b.String()
}

// Run aggregates one simulation run: latency by substrate plus throughput
// accounting over the measurement window.
type Run struct {
	// Warmup is the cycle before which deliveries are ignored.
	Warmup int64

	// Latency of all measured messages; CircuitLatency/WormholeLatency split
	// by substrate.
	Latency         Series
	CircuitLatency  Series
	WormholeLatency Series

	// Flit/message accounting within the window.
	FlitsDelivered int64
	MsgsDelivered  int64

	start, end int64 // measurement window bounds actually observed
}

// NewRun returns a collector ignoring deliveries before warmup.
func NewRun(warmup int64) *Run { return &Run{Warmup: warmup, start: -1} }

// Record registers a delivery: injection cycle, delivery cycle, length and
// substrate. Messages injected before the warm-up are excluded entirely so
// cold-start transients don't pollute the distribution.
func (r *Run) Record(injected, delivered int64, lenFlits int, viaCircuit bool) {
	if injected < r.Warmup {
		return
	}
	lat := float64(delivered - injected)
	r.Latency.Add(lat)
	if viaCircuit {
		r.CircuitLatency.Add(lat)
	} else {
		r.WormholeLatency.Add(lat)
	}
	r.FlitsDelivered += int64(lenFlits)
	r.MsgsDelivered++
	if r.start < 0 || injected < r.start {
		r.start = injected
	}
	if delivered > r.end {
		r.end = delivered
	}
}

// Throughput returns accepted throughput in flits per node per cycle over
// the observed window.
func (r *Run) Throughput(nodes int) float64 {
	if r.start < 0 || r.end <= r.start || nodes == 0 {
		return 0
	}
	return float64(r.FlitsDelivered) / float64(r.end-r.start) / float64(nodes)
}

// Snapshot is a point-in-time digest of a Run for live progress reporting
// (the payload of waved's NDJSON stream). Every field is defined for an
// empty window: before the first measured delivery the latency figures and
// throughput are all 0 (see Percentile).
type Snapshot struct {
	Delivered  int64   `json:"delivered"`
	AvgLatency float64 `json:"avg_latency"`
	P50Latency float64 `json:"p50_latency"`
	P99Latency float64 `json:"p99_latency"`
	Throughput float64 `json:"throughput"`
}

// Snapshot summarises the deliveries recorded so far for a `nodes`-node
// network. It is safe to call at any point during a run, including before
// any delivery has been recorded.
func (r *Run) Snapshot(nodes int) Snapshot {
	return Snapshot{
		Delivered:  r.MsgsDelivered,
		AvgLatency: r.Latency.Mean(),
		P50Latency: r.Latency.Percentile(50),
		P99Latency: r.Latency.Percentile(99),
		Throughput: r.Throughput(nodes),
	}
}

// Summary renders a one-line digest.
func (r *Run) Summary(nodes int) string {
	return fmt.Sprintf("msgs=%d lat(avg=%.1f p50=%.0f p99=%.0f) circ=%d wh=%d thr=%.4f",
		r.MsgsDelivered, r.Latency.Mean(), r.Latency.Percentile(50), r.Latency.Percentile(99),
		r.CircuitLatency.N(), r.WormholeLatency.N(), r.Throughput(nodes))
}

// Table is a small fixed-width text table builder for the experiment
// harness's paper-style outputs.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.header, ","))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
