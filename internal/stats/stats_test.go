package stats

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	if s.N() != 0 || s.Mean() != 0 || s.Std() != 0 {
		t.Fatal("empty series not zero")
	}
	for _, v := range []float64{4, 2, 8, 6} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %g", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Fatalf("min/max = %g/%g", s.Min(), s.Max())
	}
}

func TestSeriesStd(t *testing.T) {
	var s Series
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	// Sample std of this classic set is ~2.138.
	if got := s.Std(); got < 2.13 || got > 2.15 {
		t.Fatalf("Std = %g", got)
	}
}

func TestPercentiles(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := map[float64]float64{0: 1, 50: 50, 99: 99, 100: 100, 25: 25}
	for p, want := range cases {
		if got := s.Percentile(p); got != want {
			t.Errorf("P%g = %g, want %g", p, got, want)
		}
	}
}

func TestPercentileAfterAdd(t *testing.T) {
	// Adding after a percentile query must re-sort.
	var s Series
	s.Add(10)
	_ = s.Percentile(50)
	s.Add(1)
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("min after re-add = %g", got)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(vals []float64) bool {
		var s Series
		for _, v := range vals {
			s.Add(v)
		}
		if len(vals) == 0 {
			return s.Percentile(50) == 0
		}
		last := s.Percentile(0)
		for p := 5.0; p <= 100; p += 5 {
			cur := s.Percentile(p)
			if cur < last {
				return false
			}
			last = cur
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	var s Series
	if got := s.Histogram(4); got != "(no samples)" {
		t.Fatalf("empty histogram = %q", got)
	}
	s.Add(5)
	s.Add(5)
	if !strings.Contains(s.Histogram(4), "all 2 samples") {
		t.Fatal("degenerate histogram wrong")
	}
	for i := 0; i < 100; i++ {
		s.Add(float64(i))
	}
	h := s.Histogram(10)
	if strings.Count(h, "\n") != 10 {
		t.Fatalf("histogram rows: %q", h)
	}
}

func TestRunWarmupExclusion(t *testing.T) {
	r := NewRun(100)
	r.Record(50, 200, 8, false) // injected during warmup: dropped
	r.Record(150, 250, 8, true)
	if r.MsgsDelivered != 1 || r.Latency.N() != 1 {
		t.Fatalf("warmup exclusion failed: %d msgs", r.MsgsDelivered)
	}
	if r.CircuitLatency.N() != 1 || r.WormholeLatency.N() != 0 {
		t.Fatal("substrate split wrong")
	}
	if r.Latency.Mean() != 100 {
		t.Fatalf("latency = %g", r.Latency.Mean())
	}
}

func TestRunThroughput(t *testing.T) {
	r := NewRun(0)
	if r.Throughput(16) != 0 {
		t.Fatal("empty throughput not 0")
	}
	// 2 messages x 100 flits over cycles 0..1000, 10 nodes:
	// 200 / 1000 / 10 = 0.02.
	r.Record(0, 500, 100, true)
	r.Record(100, 1000, 100, false)
	if got := r.Throughput(10); got != 0.02 {
		t.Fatalf("throughput = %g", got)
	}
}

func TestRunSummary(t *testing.T) {
	r := NewRun(0)
	r.Record(0, 10, 4, true)
	s := r.Summary(4)
	if !strings.Contains(s, "msgs=1") || !strings.Contains(s, "circ=1") {
		t.Fatalf("summary = %q", s)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("load", "latency", "protocol")
	tb.AddRow(0.1, 23.456, "clrp")
	tb.AddRow(0.2, 42.0, "wormhole")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "load") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "23.46") {
		t.Fatalf("float formatting: %q", lines[2])
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "load,latency,protocol\n") {
		t.Fatalf("csv: %q", csv)
	}
	if !strings.Contains(csv, "0.20,42.00,wormhole") {
		t.Fatalf("csv row: %q", csv)
	}
}

func TestCI95(t *testing.T) {
	var s Series
	if s.CI95() != 0 {
		t.Fatal("empty CI not 0")
	}
	s.Add(5)
	if s.CI95() != 0 {
		t.Fatal("single-sample CI not 0")
	}
	for i := 0; i < 99; i++ {
		s.Add(5)
	}
	if s.CI95() != 0 {
		t.Fatal("constant series CI not 0")
	}
	var v Series
	for i := 0; i < 100; i++ {
		v.Add(float64(i % 10))
	}
	ci := v.CI95()
	if ci <= 0 || ci > 1 {
		t.Fatalf("CI95 = %g, want small positive", ci)
	}
}

// TestEmptySeriesDefined: every distribution query on a zero-sample series
// must answer 0 — the contract waved's interval-0 streaming snapshot relies
// on (it snapshots a Run before the first measured delivery).
func TestEmptySeriesDefined(t *testing.T) {
	var s Series
	for name, got := range map[string]float64{
		"Mean":            s.Mean(),
		"Std":             s.Std(),
		"Min":             s.Min(),
		"Max":             s.Max(),
		"Percentile(0)":   s.Percentile(0),
		"Percentile(50)":  s.Percentile(50),
		"Percentile(99)":  s.Percentile(99),
		"Percentile(100)": s.Percentile(100),
	} {
		if got != 0 {
			t.Fatalf("%s on empty series = %g, want 0", name, got)
		}
	}
	if s.N() != 0 {
		t.Fatalf("N on empty series = %d", s.N())
	}
}

// TestSnapshotEmptyRun: a Snapshot taken before any delivery (interval 0 of
// a streamed run) is all zeros, not NaN or a panic.
func TestSnapshotEmptyRun(t *testing.T) {
	r := NewRun(1000)
	snap := r.Snapshot(16)
	if snap != (Snapshot{}) {
		t.Fatalf("empty-run snapshot = %+v, want zero value", snap)
	}
	// Warm-up deliveries stay excluded from the snapshot too.
	r.Record(10, 60, 8, false)
	if snap := r.Snapshot(16); snap.Delivered != 0 {
		t.Fatalf("warm-up delivery leaked into snapshot: %+v", snap)
	}
	r.Record(2000, 2100, 8, true)
	snap = r.Snapshot(16)
	if snap.Delivered != 1 || snap.AvgLatency != 100 || snap.P50Latency != 100 || snap.P99Latency != 100 {
		t.Fatalf("snapshot after one delivery = %+v", snap)
	}
}
