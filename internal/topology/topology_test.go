package topology

import (
	"testing"
	"testing/quick"
)

func TestNewCubeValidation(t *testing.T) {
	if _, err := NewCube(nil, false); err == nil {
		t.Fatal("empty radix accepted")
	}
	if _, err := NewCube([]int{4, 1}, false); err == nil {
		t.Fatal("radix 1 accepted")
	}
	if _, err := NewCube([]int{3, 5}, true); err != nil {
		t.Fatalf("valid cube rejected: %v", err)
	}
}

func TestCoordRoundTrip(t *testing.T) {
	topos := []*Cube{
		MustCube([]int{4, 4}, false),
		MustCube([]int{8, 8}, true),
		MustCube([]int{3, 5, 2}, true),
	}
	for _, c := range topos {
		buf := make([]int, c.Dims())
		for n := Node(0); int(n) < c.Nodes(); n++ {
			coord := c.Coord(n, buf)
			for d, x := range coord {
				if x < 0 || x >= c.Radix(d) {
					t.Fatalf("%s: node %d coordinate %d out of range in dim %d", c.Name(), n, x, d)
				}
			}
			if back := c.NodeAt(coord); back != n {
				t.Fatalf("%s: round trip %d -> %v -> %d", c.Name(), n, coord, back)
			}
		}
	}
}

func TestNodesCount(t *testing.T) {
	c := MustCube([]int{3, 4, 5}, false)
	if c.Nodes() != 60 {
		t.Fatalf("Nodes = %d, want 60", c.Nodes())
	}
	h, err := NewHypercube(5)
	if err != nil {
		t.Fatal(err)
	}
	if h.Nodes() != 32 || h.Dims() != 5 {
		t.Fatalf("hypercube: nodes=%d dims=%d", h.Nodes(), h.Dims())
	}
}

func TestNeighborMeshBoundaries(t *testing.T) {
	c := MustCube([]int{4, 4}, false)
	// Corner (0,0): no Minus neighbor in either dimension.
	n := c.NodeAt([]int{0, 0})
	if _, ok := c.Neighbor(n, 0, Minus); ok {
		t.Fatal("mesh corner has Minus neighbor in dim 0")
	}
	if _, ok := c.Neighbor(n, 1, Minus); ok {
		t.Fatal("mesh corner has Minus neighbor in dim 1")
	}
	if nb, ok := c.Neighbor(n, 0, Plus); !ok || nb != c.NodeAt([]int{1, 0}) {
		t.Fatalf("Plus neighbor of corner wrong: %d, %v", nb, ok)
	}
	// Far corner (3,3): no Plus neighbor.
	f := c.NodeAt([]int{3, 3})
	if _, ok := c.Neighbor(f, 0, Plus); ok {
		t.Fatal("mesh far corner has Plus neighbor in dim 0")
	}
}

func TestNeighborTorusWraps(t *testing.T) {
	c := MustCube([]int{4, 4}, true)
	n := c.NodeAt([]int{0, 2})
	nb, ok := c.Neighbor(n, 0, Minus)
	if !ok || nb != c.NodeAt([]int{3, 2}) {
		t.Fatalf("torus wrap Minus: got %d ok=%v", nb, ok)
	}
	f := c.NodeAt([]int{3, 1})
	nb, ok = c.Neighbor(f, 0, Plus)
	if !ok || nb != c.NodeAt([]int{0, 1}) {
		t.Fatalf("torus wrap Plus: got %d ok=%v", nb, ok)
	}
}

func TestNeighborSymmetry(t *testing.T) {
	// Following (dim,dir) then (dim,opposite) returns to the start.
	for _, c := range []*Cube{MustCube([]int{4, 3}, false), MustCube([]int{5, 4}, true)} {
		for n := Node(0); int(n) < c.Nodes(); n++ {
			for dim := 0; dim < c.Dims(); dim++ {
				for _, dir := range []Dir{Plus, Minus} {
					nb, ok := c.Neighbor(n, dim, dir)
					if !ok {
						continue
					}
					back, ok2 := c.Neighbor(nb, dim, dir.Opposite())
					if !ok2 || back != n {
						t.Fatalf("%s: neighbor not symmetric at node %d dim %d dir %v", c.Name(), n, dim, dir)
					}
				}
			}
		}
	}
}

func TestLinkByIDConsistency(t *testing.T) {
	for _, c := range []*Cube{MustCube([]int{4, 4}, false), MustCube([]int{4, 4}, true)} {
		for id := 0; id < c.NumLinkSlots(); id++ {
			l, ok := c.LinkByID(LinkID(id))
			if !ok {
				continue
			}
			if l.ID != LinkID(id) {
				t.Fatalf("link ID mismatch: %d vs %d", l.ID, id)
			}
			gotID, gotOK := c.OutLink(l.From, l.Dim, l.Dir)
			if !gotOK || gotID != l.ID {
				t.Fatalf("OutLink disagrees with LinkByID for %+v", l)
			}
			nb, _ := c.Neighbor(l.From, l.Dim, l.Dir)
			if nb != l.To {
				t.Fatalf("link target mismatch: %+v, neighbor %d", l, nb)
			}
		}
	}
	if _, ok := MustCube([]int{4, 4}, true).LinkByID(Invalid); ok {
		t.Fatal("Invalid link resolved")
	}
}

func TestLinkCounts(t *testing.T) {
	mesh := MustCube([]int{4, 4}, false)
	// 2D 4x4 mesh: 2 * (3*4 + 3*4) = 48 unidirectional links.
	if got := len(AllLinks(mesh)); got != 48 {
		t.Fatalf("mesh links = %d, want 48", got)
	}
	torus := MustCube([]int{4, 4}, true)
	// Torus: every slot exists: 16 nodes * 4 = 64.
	if got := len(AllLinks(torus)); got != 64 {
		t.Fatalf("torus links = %d, want 64", got)
	}
}

func TestWrapFlag(t *testing.T) {
	c := MustCube([]int{4, 4}, true)
	wraps := 0
	for _, l := range AllLinks(c) {
		fromX := c.Coord(l.From, make([]int, 2))[l.Dim]
		if l.Wrap {
			wraps++
			if !(l.Dir == Plus && fromX == 3 || l.Dir == Minus && fromX == 0) {
				t.Fatalf("link flagged wrap incorrectly: %+v fromX=%d", l, fromX)
			}
		}
	}
	// Each dimension has 4 rows/cols, each with 2 wrap links (one per direction).
	if wraps != 16 {
		t.Fatalf("wrap links = %d, want 16", wraps)
	}
	for _, l := range AllLinks(MustCube([]int{4, 4}, false)) {
		if l.Wrap {
			t.Fatalf("mesh link flagged wrap: %+v", l)
		}
	}
}

func TestDistanceMesh(t *testing.T) {
	c := MustCube([]int{4, 4}, false)
	a := c.NodeAt([]int{0, 0})
	b := c.NodeAt([]int{3, 2})
	if d := c.Distance(a, b); d != 5 {
		t.Fatalf("mesh distance = %d, want 5", d)
	}
	if d := c.Distance(a, a); d != 0 {
		t.Fatalf("self distance = %d", d)
	}
}

func TestDistanceTorus(t *testing.T) {
	c := MustCube([]int{8, 8}, true)
	a := c.NodeAt([]int{0, 0})
	b := c.NodeAt([]int{7, 6}) // wrap: 1 + 2
	if d := c.Distance(a, b); d != 3 {
		t.Fatalf("torus distance = %d, want 3", d)
	}
}

func TestOffsetsFollowHops(t *testing.T) {
	// Property: taking one hop in the direction of a nonzero offset reduces
	// the total distance by exactly one, for mesh and torus alike.
	for _, c := range []*Cube{MustCube([]int{5, 5}, false), MustCube([]int{6, 4}, true)} {
		buf := make([]int, c.Dims())
		prop := func(sa, sb uint16) bool {
			a := Node(int(sa) % c.Nodes())
			b := Node(int(sb) % c.Nodes())
			cur := a
			for cur != b {
				off := c.Offsets(cur, b, buf)
				moved := false
				for dim, o := range off {
					if o == 0 {
						continue
					}
					dir := Plus
					if o < 0 {
						dir = Minus
					}
					nb, ok := c.Neighbor(cur, dim, dir)
					if !ok {
						return false // minimal offset must always be followable
					}
					before := c.Distance(cur, b)
					after := c.Distance(nb, b)
					if after != before-1 {
						return false
					}
					cur = nb
					moved = true
					break
				}
				if !moved {
					return false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
	}
}

func TestOffsetsTieBreakPlus(t *testing.T) {
	c := MustCube([]int{8, 8}, true)
	a := c.NodeAt([]int{0, 0})
	b := c.NodeAt([]int{4, 0}) // exactly half way: tie resolves Plus
	off := c.Offsets(a, b, make([]int, 2))
	if off[0] != 4 {
		t.Fatalf("tie offset = %d, want +4", off[0])
	}
}

func TestOffsetsZeroAtDestination(t *testing.T) {
	c := MustCube([]int{4, 4, 4}, true)
	buf := make([]int, 3)
	for n := Node(0); int(n) < c.Nodes(); n += 7 {
		for _, o := range c.Offsets(n, n, buf) {
			if o != 0 {
				t.Fatalf("self offsets nonzero: %v", buf)
			}
		}
	}
}

func TestHypercubeNeighbors(t *testing.T) {
	h, err := NewHypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	// In a hypercube every node has exactly Dims neighbors, each differing in
	// one bit.
	for n := Node(0); int(n) < h.Nodes(); n++ {
		count := 0
		for dim := 0; dim < h.Dims(); dim++ {
			for _, dir := range []Dir{Plus, Minus} {
				nb, ok := h.Neighbor(n, dim, dir)
				if !ok {
					continue
				}
				count++
				if int(n)^int(nb) != 1<<dim {
					t.Fatalf("hypercube neighbor differs in wrong bit: %d vs %d (dim %d)", n, nb, dim)
				}
			}
		}
		if count != h.Dims() {
			t.Fatalf("node %d has %d neighbors, want %d", n, count, h.Dims())
		}
	}
}

func TestNames(t *testing.T) {
	if got := MustCube([]int{8, 8}, true).Name(); got != "8-ary 2-cube (torus)" {
		t.Fatalf("name = %q", got)
	}
	if got := MustCube([]int{3, 5}, false).Name(); got != "3x5 mesh" {
		t.Fatalf("name = %q", got)
	}
}

// TestDistanceIsAMetric: symmetry, identity, and the triangle inequality,
// property-checked over random node triples on meshes and tori.
func TestDistanceIsAMetric(t *testing.T) {
	for _, c := range []*Cube{
		MustCube([]int{5, 4}, false),
		MustCube([]int{6, 6}, true),
		MustCube([]int{3, 3, 3}, true),
	} {
		c := c
		prop := func(sa, sb, sc uint16) bool {
			a := Node(int(sa) % c.Nodes())
			b := Node(int(sb) % c.Nodes())
			x := Node(int(sc) % c.Nodes())
			if c.Distance(a, a) != 0 {
				return false
			}
			if c.Distance(a, b) != c.Distance(b, a) {
				return false
			}
			if a != b && c.Distance(a, b) <= 0 {
				return false
			}
			return c.Distance(a, x) <= c.Distance(a, b)+c.Distance(b, x)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// TestOffsetsSumToDistance: the probe's Xi-offsets always account exactly
// for the minimal distance.
func TestOffsetsSumToDistance(t *testing.T) {
	for _, c := range []*Cube{MustCube([]int{7, 5}, false), MustCube([]int{8, 8}, true)} {
		c := c
		buf := make([]int, c.Dims())
		prop := func(sa, sb uint16) bool {
			a := Node(int(sa) % c.Nodes())
			b := Node(int(sb) % c.Nodes())
			sum := 0
			for _, o := range c.Offsets(a, b, buf) {
				if o < 0 {
					sum -= o
				} else {
					sum += o
				}
			}
			return sum == c.Distance(a, b)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}
