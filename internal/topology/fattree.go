package topology

import "fmt"

// FatTree is a k-ary n-tree (an m-port n-tree with m = 2k): k^n hosts at the
// bottom, n levels of k^(n-1) switches above them, every switch with k links
// down and (except the roots) k links up. It is the constant-bisection
// indirect network of Petrini & Vanneschi, the natural home of up*/down*
// routing (the sst-workbench routing.c exemplar).
//
// Naming scheme: host p is identified by its n base-k digits p_0..p_(n-1)
// (p = sum p_i * k^i); switch <l, w> by its level l (0 = roots, n-1 = leaf
// switches) and n-1 digits w_0..w_(n-2). Switch <l, w> connects down to the
// k switches <l+1, w'> whose digits agree with w except digit l (leaf
// switches connect down to the k hosts sharing digits 0..n-2), so the
// subtree of <l, w> is exactly the hosts agreeing with w on digits 0..l-1 —
// the invariant up*/down* routing's "is the destination below me" test uses.
//
// Hosts are numbered first (0..k^n-1), switches after them, which is what
// lets traffic generation, proof seeding and delivery checks range over
// Hosts() without knowing the family.
type FatTree struct {
	k, n   int
	hosts  int // k^n
	span   int // k^(n-1), switches per level
	nodes  int
	name   string
	levels []int8 // per node: n for hosts, l for switches

	// Slot layout: hosts own 1 up slot each, switches k down plus (l > 0)
	// k up slots, ups first. All slots are real links.
	slotBase []int32
	slots    int
	maxDeg   int
	linkFrom []int32
	linkTo   []int32
	linkDim  []int8
	linkDir  []uint8
	linkRev  []int32
}

// NewFatTree constructs a k-ary n-tree with k >= 2 links per direction and
// n >= 1 levels.
func NewFatTree(k, n int) (*FatTree, error) {
	if k < 2 {
		return nil, fmt.Errorf("topology: fat tree needs arity k >= 2, got %d", k)
	}
	if n < 1 {
		return nil, fmt.Errorf("topology: fat tree needs n >= 1 levels, got %d", n)
	}
	hosts, span := 1, 1
	for i := 0; i < n; i++ {
		hosts *= k
		if hosts > 1<<20 {
			return nil, fmt.Errorf("topology: %d-ary %d-tree exceeds the 2^20 host gate", k, n)
		}
	}
	span = hosts / k
	t := &FatTree{
		k: k, n: n, hosts: hosts, span: span,
		nodes: hosts + n*span,
		name:  fmt.Sprintf("%d-ary %d-tree (fat tree)", k, n),
	}
	t.levels = make([]int8, t.nodes)
	t.slotBase = make([]int32, t.nodes+1)
	base := 0
	for v := 0; v < t.nodes; v++ {
		t.slotBase[v] = int32(base)
		if v < hosts {
			t.levels[v] = int8(n)
			base++ // one up link to the leaf switch
			continue
		}
		l := (v - hosts) / span
		t.levels[v] = int8(l)
		deg := t.k // down links
		if l > 0 {
			deg += t.k // up links
		}
		base += deg
	}
	t.slotBase[t.nodes] = int32(base)
	t.slots = base
	t.maxDeg = t.k
	if n > 1 {
		t.maxDeg = 2 * t.k
	}

	t.linkFrom = make([]int32, t.slots)
	t.linkTo = make([]int32, t.slots)
	t.linkDim = make([]int8, t.slots)
	t.linkDir = make([]uint8, t.slots)
	t.linkRev = make([]int32, t.slots)
	for v := 0; v < t.nodes; v++ {
		for port := 0; port < t.OutDegree(Node(v)); port++ {
			id := int(t.slotBase[v]) + port
			to, dim, dir := t.portTarget(Node(v), port)
			t.linkFrom[id] = int32(v)
			t.linkTo[id] = int32(to)
			t.linkDim[id] = int8(dim)
			t.linkDir[id] = uint8(dir)
		}
	}
	// Reverse mapping: every link has exactly one opposite (same endpoints,
	// swapped); resolve it by scanning the target's short port range.
	for id := 0; id < t.slots; id++ {
		to := Node(t.linkTo[id])
		rev := int32(-1)
		for port := 0; port < t.OutDegree(to); port++ {
			cand := int(t.slotBase[to]) + port
			if t.linkTo[cand] == t.linkFrom[id] && t.linkDim[cand] == t.linkDim[id] {
				rev = int32(cand)
				break
			}
		}
		if rev < 0 {
			return nil, fmt.Errorf("topology: fat tree link %d has no reverse (internal bug)", id)
		}
		t.linkRev[id] = rev
	}
	return t, nil
}

// MustFatTree is NewFatTree that panics on error, for tests.
func MustFatTree(k, n int) *FatTree {
	t, err := NewFatTree(k, n)
	if err != nil {
		panic(err)
	}
	return t
}

// portTarget resolves port of node v to (target, level boundary, direction).
// Dim labels the digit index the hop rewrites (the level boundary crossed);
// Dir is Plus going up (toward the roots), Minus going down.
func (t *FatTree) portTarget(v Node, port int) (Node, int, Dir) {
	if int(v) < t.hosts {
		// Host up link to leaf switch <n-1, digits 0..n-2>.
		return Node(t.hosts + (t.n-1)*t.span + int(v)%t.span), t.n - 1, Plus
	}
	l, wv := t.switchAt(v)
	if l > 0 && port < t.k {
		// Up port j: rewrite digit l-1 to j.
		return t.switchID(l-1, t.setDigit(wv, l-1, port)), l - 1, Plus
	}
	j := port
	if l > 0 {
		j -= t.k
	}
	if l == t.n-1 {
		// Leaf down port j: host with digits 0..n-2 = w, digit n-1 = j.
		return Node(wv + j*t.span), t.n - 1, Minus
	}
	// Down port j: rewrite digit l to j.
	return t.switchID(l+1, t.setDigit(wv, l, j)), l, Minus
}

// switchAt decomposes a switch node into (level, digit value).
func (t *FatTree) switchAt(v Node) (l, wv int) {
	s := int(v) - t.hosts
	return s / t.span, s % t.span
}

// switchID composes a switch node from (level, digit value).
func (t *FatTree) switchID(l, wv int) Node { return Node(t.hosts + l*t.span + wv) }

// setDigit returns wv with base-k digit i replaced by d.
func (t *FatTree) setDigit(wv, i, d int) int {
	p := 1
	for j := 0; j < i; j++ {
		p *= t.k
	}
	return wv + (d-(wv/p)%t.k)*p
}

// digit returns base-k digit i of v.
func (t *FatTree) digit(v, i int) int {
	for j := 0; j < i; j++ {
		v /= t.k
	}
	return v % t.k
}

// Nodes implements Topology.
func (t *FatTree) Nodes() int { return t.nodes }

// Hosts implements Topology.
func (t *FatTree) Hosts() int { return t.hosts }

// Name implements Topology.
func (t *FatTree) Name() string { return t.name }

// NumLinkSlots implements Topology.
func (t *FatTree) NumLinkSlots() int { return t.slots }

// MaxOutDegree implements Topology.
func (t *FatTree) MaxOutDegree() int { return t.maxDeg }

// OutDegree implements Topology.
func (t *FatTree) OutDegree(n Node) int {
	return int(t.slotBase[int(n)+1] - t.slotBase[n])
}

// SlotBase implements Topology.
func (t *FatTree) SlotBase(n Node) int { return int(t.slotBase[n]) }

// OutSlot implements Topology: every fat-tree slot is a real link.
func (t *FatTree) OutSlot(n Node, port int) (LinkID, bool) {
	if port < 0 || port >= t.OutDegree(n) {
		return Invalid, false
	}
	return LinkID(int(t.slotBase[n]) + port), true
}

// LinkByID implements Topology.
func (t *FatTree) LinkByID(id LinkID) (Link, bool) {
	if id < 0 || int(id) >= t.slots {
		return Link{}, false
	}
	return Link{
		ID:   id,
		From: Node(t.linkFrom[id]),
		To:   Node(t.linkTo[id]),
		Dim:  int(t.linkDim[id]),
		Dir:  Dir(t.linkDir[id]),
	}, true
}

// ReverseLinkID implements the reverser fast path for ReverseLink.
func (t *FatTree) ReverseLinkID(id LinkID) (LinkID, bool) {
	if id < 0 || int(id) >= t.slots {
		return Invalid, false
	}
	return LinkID(t.linkRev[id]), true
}

// Level returns the tree level of v: 0 for roots, n-1 for leaf switches, n
// for hosts.
func (t *FatTree) Level(v Node) int { return int(t.levels[v]) }

// Levels returns n, the number of switch levels.
func (t *FatTree) Levels() int { return t.n }

// Arity returns k, the links per direction.
func (t *FatTree) Arity() int { return t.k }

// InSubtree reports whether host h lies below v (v a switch: digit agreement
// on indices < level; v a host: identity).
func (t *FatTree) InSubtree(v Node, h Node) bool {
	if int(v) < t.hosts {
		return v == h
	}
	l, wv := t.switchAt(v)
	for i := 0; i < l; i++ {
		if t.digit(wv, i) != t.digit(int(h), i) {
			return false
		}
	}
	return true
}

// DownPort returns the port of switch v whose down link leads toward host h.
// The caller must have established InSubtree(v, h).
func (t *FatTree) DownPort(v Node, h Node) int {
	l, _ := t.switchAt(v)
	base := 0
	if l > 0 {
		base = t.k // ups come first
	}
	if l == t.n-1 {
		return base + t.digit(int(h), t.n-1)
	}
	return base + t.digit(int(h), l)
}

// NumUpPorts returns the count of up ports at v (ports 0..count-1): 1 for a
// host, 0 for a root switch, k otherwise.
func (t *FatTree) NumUpPorts(v Node) int {
	switch {
	case int(v) < t.hosts:
		return 1
	case t.Level(v) == 0:
		return 0
	default:
		return t.k
	}
}

// Distance implements Topology with the closed form for k-ary n-trees: a
// path from a to b must span the level range from min(level, lowest
// differing digit) up to max(level, highest differing digit boundary), and
// one optimal path exists that sweeps that range once with a single
// direction change.
func (t *FatTree) Distance(a, b Node) int {
	if a == b {
		return 0
	}
	la, lb := int(t.levels[a]), int(t.levels[b])
	da, db := t.digitsOf(a), t.digitsOf(b)
	minD, maxD := -1, -1
	// Compare digit indices defined for both endpoints: 0..n-2 always, and
	// index n-1 only between two hosts (a switch has no digit n-1; the host
	// link crossing boundary n-1 is already forced by reaching level n).
	top := t.n - 1
	if la == t.n && lb == t.n {
		top = t.n
	}
	for i := 0; i < top; i++ {
		if t.digit(da, i) != t.digit(db, i) {
			if minD < 0 {
				minD = i
			}
			maxD = i
		}
	}
	lo := minInt(la, lb)
	if minD >= 0 && minD < lo {
		lo = minD
	}
	hi := maxInt(la, lb)
	if maxD >= 0 && maxD+1 > hi {
		hi = maxD + 1
	}
	down := (la - lo) + (hi - lb) // descend-last order
	up := (hi - la) + (lb - lo)   // ascend-last order
	return (hi - lo) + minInt(down, up)
}

// digitsOf returns the digit value of v (host value, or switch wv).
func (t *FatTree) digitsOf(v Node) int {
	if int(v) < t.hosts {
		return int(v)
	}
	_, wv := t.switchAt(v)
	return wv
}

// Diameter implements Topology: hosts disagreeing in digit 0 are 2n apart
// (up to a root, down the other side).
func (t *FatTree) Diameter() int { return 2 * t.n }

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
