package topology

import "fmt"

// FullMesh is the direct all-to-all network: every node has a dedicated
// unidirectional link to every other node. Diameter 1, degree N-1. Its
// natural deadlock-free routing is the VC-free scheme of Cano et al. (HOTI
// 2025): direct delivery always works, and the optional 2-hop adaptivity is
// restricted to label-increasing link pairs so the channel dependency graph
// stays acyclic with a single virtual channel (see routing.NewVCFree).
//
// Slot layout: node a owns slots [a*(N-1), (a+1)*(N-1)); port p targets node
// p for p < a and p+1 otherwise (self-links do not exist). Every slot is a
// real link.
type FullMesh struct {
	n    int
	name string
}

// NewFullMesh constructs an all-to-all network over n nodes.
func NewFullMesh(n int) (*FullMesh, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: full mesh needs >= 2 nodes, got %d", n)
	}
	if n > 1<<12 {
		return nil, fmt.Errorf("topology: full mesh over %d nodes exceeds the 2^12 gate (%d links)", n, n*(n-1))
	}
	return &FullMesh{n: n, name: fmt.Sprintf("%d-node full mesh", n)}, nil
}

// MustFullMesh is NewFullMesh that panics on error, for tests.
func MustFullMesh(n int) *FullMesh {
	t, err := NewFullMesh(n)
	if err != nil {
		panic(err)
	}
	return t
}

// Nodes implements Topology.
func (m *FullMesh) Nodes() int { return m.n }

// Hosts implements Topology: every node carries a processor.
func (m *FullMesh) Hosts() int { return m.n }

// Name implements Topology.
func (m *FullMesh) Name() string { return m.name }

// OutDegree implements Topology.
func (m *FullMesh) OutDegree(Node) int { return m.n - 1 }

// MaxOutDegree implements Topology.
func (m *FullMesh) MaxOutDegree() int { return m.n - 1 }

// NumLinkSlots implements Topology.
func (m *FullMesh) NumLinkSlots() int { return m.n * (m.n - 1) }

// SlotBase implements Topology.
func (m *FullMesh) SlotBase(n Node) int { return int(n) * (m.n - 1) }

// OutSlot implements Topology: every full-mesh slot is a real link.
func (m *FullMesh) OutSlot(n Node, port int) (LinkID, bool) {
	if port < 0 || port >= m.n-1 {
		return Invalid, false
	}
	return LinkID(int(n)*(m.n-1) + port), true
}

// LinkTo returns the slot of the direct link from a to b (a != b).
func (m *FullMesh) LinkTo(a, b Node) LinkID {
	port := int(b)
	if b > a {
		port--
	}
	return LinkID(int(a)*(m.n-1) + port)
}

// LinkByID implements Topology.
func (m *FullMesh) LinkByID(id LinkID) (Link, bool) {
	if id < 0 || int(id) >= m.NumLinkSlots() {
		return Link{}, false
	}
	from := int(id) / (m.n - 1)
	to := int(id) % (m.n - 1)
	if to >= from {
		to++
	}
	return Link{ID: id, From: Node(from), To: Node(to), Dim: 0, Dir: Plus}, true
}

// ReverseLinkID implements the reverser fast path for ReverseLink.
func (m *FullMesh) ReverseLinkID(id LinkID) (LinkID, bool) {
	l, ok := m.LinkByID(id)
	if !ok {
		return Invalid, false
	}
	return m.LinkTo(l.To, l.From), true
}

// Distance implements Topology.
func (m *FullMesh) Distance(a, b Node) int {
	if a == b {
		return 0
	}
	return 1
}

// Diameter implements Topology.
func (m *FullMesh) Diameter() int { return 1 }
