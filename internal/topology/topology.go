// Package topology models the interconnection networks the simulator runs
// on. The paper targets direct k-ary n-cubes (meshes and tori) and
// hypercubes, the "low dimensional topologies" of state-of-the-art machines
// circa the paper (section 1); those are the Cube family, which additionally
// provides node/coordinate conversion and the per-dimension signed offsets
// that the routing probe carries in its Xi-offset fields (Figure 4). Two
// further families exercise the protocols' topology independence: FatTree
// (k-ary n-tree, up*/down* routing) and FullMesh (direct all-to-all, VC-free
// deadlock-free routing).
//
// The core Topology interface is deliberately shape-agnostic: node degree,
// link-slot layout, distance and diameter are owned by the implementation.
// Cube-specific coordinate geometry lives behind the Geometry extension,
// which consumers must type-assert for (cube-only routing functions do this
// in their constructors and fail cleanly on other families).
package topology

import (
	"fmt"
	"strings"
)

// Node identifies a router/processor pair. Nodes are numbered 0..Nodes()-1 in
// row-major coordinate order (dimension 0 varies fastest).
type Node int

// Dir is a direction along a dimension.
type Dir int

const (
	// Plus moves toward increasing coordinate.
	Plus Dir = 0
	// Minus moves toward decreasing coordinate.
	Minus Dir = 1
)

// Opposite returns the reverse direction.
func (d Dir) Opposite() Dir { return 1 - d }

func (d Dir) String() string {
	if d == Plus {
		return "+"
	}
	return "-"
}

// LinkID identifies a unidirectional physical link slot. The slot layout is
// topology-owned: node n's outgoing slots are the contiguous range
// [SlotBase(n), SlotBase(n)+OutDegree(n)), one per local output port. Some
// slots may exist as IDs but carry no physical link (mesh boundary ports);
// LinkByID reports those with ok == false. On cubes the layout is the
// historical LinkID = int(node)*2*dims + 2*dim + int(dir) (port 2*dim+dir),
// kept bit-for-bit so cube runs are unchanged.
type LinkID int

// Invalid is the sentinel for "no link".
const Invalid LinkID = -1

// Link describes one unidirectional physical link. Dim and Dir are
// family-defined labels: on cubes they are the dimension travelled and the
// coordinate direction; on fat trees Dim is the tree level boundary crossed
// and Dir is Plus for upward (toward the roots) and Minus for downward
// hops; on full meshes Dim is 0 and Dir is Plus.
type Link struct {
	ID   LinkID
	From Node
	To   Node
	Dim  int
	Dir  Dir
	// Wrap reports whether this is a torus wraparound link (it crosses the
	// dateline of its dimension). Routing schemes that need datelines — the
	// two-class virtual channel scheme on tori — key off this flag.
	Wrap bool
}

// Topology is the shape-agnostic read-only interface the rest of the
// simulator consumes: node and host counts, the per-node link-slot layout,
// and hop distances. Anything needing cube coordinates must type-assert the
// Geometry extension.
type Topology interface {
	// Nodes returns the number of network vertices (routers). On indirect
	// topologies this includes switch-only vertices with no processor.
	Nodes() int
	// Hosts returns the number of processor-bearing nodes. Hosts are always
	// numbered 0..Hosts()-1; traffic originates and terminates only there.
	// On direct topologies (cubes, full mesh) Hosts() == Nodes().
	Hosts() int
	// OutDegree returns the number of outgoing link slots (ports) at n.
	// Ports are indexed 0..OutDegree(n)-1; some may be phantom slots with no
	// physical link (mesh boundaries).
	OutDegree(n Node) int
	// MaxOutDegree returns the maximum OutDegree over all nodes — the bound
	// per-node scratch arenas are sized from.
	MaxOutDegree() int
	// SlotBase returns the first LinkID of node n's contiguous slot range;
	// its ports occupy [SlotBase(n), SlotBase(n)+OutDegree(n)).
	SlotBase(n Node) int
	// OutSlot returns the outgoing link slot of n's port (0-based). The ID
	// is always well-formed; ok reports whether the physical link exists.
	OutSlot(n Node, port int) (id LinkID, ok bool)
	// LinkByID resolves a link slot. ok is false for non-existent phantom
	// slots and out-of-range IDs.
	LinkByID(id LinkID) (Link, bool)
	// NumLinkSlots returns the total slot count (the sum of OutDegree over
	// all nodes), the size of dense per-link arrays.
	NumLinkSlots() int
	// Distance returns the minimal hop count between a and b.
	Distance(a, b Node) int
	// Diameter returns the maximum Distance over host pairs — the hop bound
	// livelock proofs and drain deadlines scale with.
	Diameter() int
	// Name returns a human-readable description, e.g. "8-ary 2-cube (torus)".
	Name() string
}

// Geometry is the cube-coordinate extension of Topology: per-dimension
// radixes, coordinate conversion, and the signed minimal offsets the paper's
// probe carries in its Xi-offset fields (Figure 4). Only the Cube family
// implements it; cube-specific routing functions assert it in their
// constructors.
type Geometry interface {
	Topology
	// Dims returns the number of dimensions.
	Dims() int
	// Radix returns the number of nodes along dimension d.
	Radix(d int) int
	// Wrap reports whether the network has wraparound (torus) links.
	Wrap() bool
	// Coord writes the coordinates of n into out (len >= Dims) and returns it.
	Coord(n Node, out []int) []int
	// CoordAlong returns the coordinate of n in dimension d without touching
	// any caller-provided scratch — the zero-allocation accessor hot paths
	// (dateline classes, routing tables) use instead of Coord.
	CoordAlong(n Node, d int) int
	// NodeAt returns the node at the given coordinates.
	NodeAt(coord []int) Node
	// Neighbor returns the node reached from n along (dim, dir), and whether
	// such a link exists (always true on a torus, false at mesh boundaries).
	Neighbor(n Node, dim int, dir Dir) (Node, bool)
	// OutLink returns the outgoing link slot of n along (dim, dir). The ID is
	// always well-formed; ok reports whether the physical link exists.
	OutLink(n Node, dim int, dir Dir) (id LinkID, ok bool)
	// Offsets writes the per-dimension signed minimal offsets from `from` to
	// `to` into out (len >= Dims) and returns it. These are the probe's
	// Xi-offset fields: moving one hop in Plus decreases a positive offset by
	// one (modulo wrap bookkeeping). On tori, ties at distance k/2 take Plus.
	Offsets(from, to Node, out []int) []int
	// OffsetAlong returns the single-dimension entry of Offsets without a
	// scratch slice, for allocation-free routing decisions.
	OffsetAlong(from, to Node, d int) int
}

// Cube is a k-ary n-cube: radixes per dimension, with or without wraparound.
// It implements Topology. A hypercube is NewHypercube(n) = 2-ary n-cube
// without wrap (with radix 2 the two directions coincide, so mesh form
// avoids double links).
type Cube struct {
	radix  []int
	wrap   bool
	nodes  int
	stride []int // stride[d] = product of radix[0..d-1]
	name   string
}

// NewCube constructs a k-ary n-cube. radix lists the nodes per dimension
// (all >= 2); wrap selects torus (true) or mesh (false).
func NewCube(radix []int, wrap bool) (*Cube, error) {
	if len(radix) == 0 {
		return nil, fmt.Errorf("topology: need at least one dimension")
	}
	nodes := 1
	stride := make([]int, len(radix))
	for d, k := range radix {
		if k < 2 {
			return nil, fmt.Errorf("topology: dimension %d has radix %d, need >= 2", d, k)
		}
		stride[d] = nodes
		nodes *= k
	}
	kind := "mesh"
	if wrap {
		kind = "torus"
	}
	uniform := true
	for _, k := range radix[1:] {
		if k != radix[0] {
			uniform = false
		}
	}
	var name string
	if uniform {
		name = fmt.Sprintf("%d-ary %d-cube (%s)", radix[0], len(radix), kind)
	} else {
		parts := make([]string, len(radix))
		for i, k := range radix {
			parts[i] = fmt.Sprint(k)
		}
		name = fmt.Sprintf("%s %s", strings.Join(parts, "x"), kind)
	}
	return &Cube{radix: append([]int(nil), radix...), wrap: wrap, nodes: nodes, stride: stride, name: name}, nil
}

// MustCube is NewCube that panics on error, for tests and fixed configs.
func MustCube(radix []int, wrap bool) *Cube {
	c, err := NewCube(radix, wrap)
	if err != nil {
		panic(err)
	}
	return c
}

// NewMesh2D returns an x-by-y mesh.
func NewMesh2D(x, y int) (*Cube, error) { return NewCube([]int{x, y}, false) }

// NewTorus2D returns an x-by-y torus.
func NewTorus2D(x, y int) (*Cube, error) { return NewCube([]int{x, y}, true) }

// NewHypercube returns an n-dimensional binary hypercube (2^n nodes).
func NewHypercube(n int) (*Cube, error) {
	radix := make([]int, n)
	for i := range radix {
		radix[i] = 2
	}
	c, err := NewCube(radix, false)
	if err != nil {
		return nil, err
	}
	c.name = fmt.Sprintf("%d-dimensional hypercube", n)
	return c, nil
}

// Nodes implements Topology.
func (c *Cube) Nodes() int { return c.nodes }

// Hosts implements Topology: every cube node carries a processor.
func (c *Cube) Hosts() int { return c.nodes }

// OutDegree implements Topology: 2 slots per dimension at every node (mesh
// boundary slots included as phantoms, preserving the historical layout).
func (c *Cube) OutDegree(Node) int { return 2 * len(c.radix) }

// MaxOutDegree implements Topology.
func (c *Cube) MaxOutDegree() int { return 2 * len(c.radix) }

// SlotBase implements Topology.
func (c *Cube) SlotBase(n Node) int { return int(n) * 2 * len(c.radix) }

// OutSlot implements Topology: port 2*dim+dir, matching OutLink.
func (c *Cube) OutSlot(n Node, port int) (LinkID, bool) {
	if port < 0 || port >= 2*len(c.radix) {
		return Invalid, false
	}
	return c.OutLink(n, port/2, Dir(port%2))
}

// Diameter implements Topology: the closed form sum over dimensions of
// k/2 (torus rings) or k-1 (mesh lines).
func (c *Cube) Diameter() int {
	d := 0
	for _, k := range c.radix {
		if c.wrap {
			d += k / 2
		} else {
			d += k - 1
		}
	}
	return d
}

// Dims implements Geometry.
func (c *Cube) Dims() int { return len(c.radix) }

// Radix implements Geometry.
func (c *Cube) Radix(d int) int { return c.radix[d] }

// Wrap implements Geometry.
func (c *Cube) Wrap() bool { return c.wrap }

// Name implements Topology.
func (c *Cube) Name() string { return c.name }

// Coord implements Topology.
func (c *Cube) Coord(n Node, out []int) []int {
	v := int(n)
	for d, k := range c.radix {
		out[d] = v % k
		v /= k
	}
	return out[:len(c.radix)]
}

// NodeAt implements Topology.
func (c *Cube) NodeAt(coord []int) Node {
	v := 0
	for d := len(c.radix) - 1; d >= 0; d-- {
		v = v*c.radix[d] + coord[d]
	}
	return Node(v)
}

// CoordAlong implements Topology without allocating.
func (c *Cube) CoordAlong(n Node, d int) int {
	return (int(n) / c.stride[d]) % c.radix[d]
}

// coordAlong is the internal alias of CoordAlong.
func (c *Cube) coordAlong(n Node, d int) int { return c.CoordAlong(n, d) }

// Neighbor implements Topology.
func (c *Cube) Neighbor(n Node, dim int, dir Dir) (Node, bool) {
	x := c.coordAlong(n, dim)
	k := c.radix[dim]
	var nx int
	if dir == Plus {
		nx = x + 1
		if nx == k {
			if !c.wrap {
				return 0, false
			}
			nx = 0
		}
	} else {
		nx = x - 1
		if nx < 0 {
			if !c.wrap {
				return 0, false
			}
			nx = k - 1
		}
	}
	return n + Node((nx-x)*c.stride[dim]), true
}

// OutLink implements Topology.
func (c *Cube) OutLink(n Node, dim int, dir Dir) (LinkID, bool) {
	id := LinkID(int(n)*2*len(c.radix) + 2*dim + int(dir))
	_, ok := c.Neighbor(n, dim, dir)
	return id, ok
}

// NumLinkSlots implements Topology.
func (c *Cube) NumLinkSlots() int { return c.nodes * 2 * len(c.radix) }

// LinkByID implements Topology.
func (c *Cube) LinkByID(id LinkID) (Link, bool) {
	if id < 0 || int(id) >= c.NumLinkSlots() {
		return Link{}, false
	}
	per := 2 * len(c.radix)
	n := Node(int(id) / per)
	rest := int(id) % per
	dim := rest / 2
	dir := Dir(rest % 2)
	to, ok := c.Neighbor(n, dim, dir)
	if !ok {
		return Link{}, false
	}
	x := c.coordAlong(n, dim)
	wrapLink := c.wrap && ((dir == Plus && x == c.radix[dim]-1) || (dir == Minus && x == 0))
	return Link{ID: id, From: n, To: to, Dim: dim, Dir: dir, Wrap: wrapLink}, true
}

// Distance implements Topology.
func (c *Cube) Distance(a, b Node) int {
	d := 0
	for dim := range c.radix {
		d += absInt(c.offsetAlong(a, b, dim))
	}
	return d
}

// offsetAlong returns the signed minimal offset from a to b in dimension dim.
// Positive means travel in Plus. On tori, ties (distance exactly k/2 with k
// even) resolve to Plus so that routing is deterministic.
func (c *Cube) offsetAlong(a, b Node, dim int) int {
	xa := c.coordAlong(a, dim)
	xb := c.coordAlong(b, dim)
	diff := xb - xa
	if !c.wrap {
		return diff
	}
	k := c.radix[dim]
	// Normalize into (-k/2, k/2]; for even k the tie k/2 goes Plus.
	for diff > k/2 {
		diff -= k
	}
	for diff < -(k-1)/2 {
		diff += k
	}
	return diff
}

// OffsetAlong implements Topology.
func (c *Cube) OffsetAlong(from, to Node, d int) int { return c.offsetAlong(from, to, d) }

// Offsets implements Topology.
func (c *Cube) Offsets(from, to Node, out []int) []int {
	for dim := range c.radix {
		out[dim] = c.offsetAlong(from, to, dim)
	}
	return out[:len(c.radix)]
}

// AllLinks returns every existing physical link, in LinkID order — the
// canonical enumeration fault injection, the dependency-graph checker and
// tests draw from (phantom slots never appear).
func AllLinks(t Topology) []Link {
	var links []Link
	for id := 0; id < t.NumLinkSlots(); id++ {
		if l, ok := t.LinkByID(LinkID(id)); ok {
			links = append(links, l)
		}
	}
	return links
}

// reverser is the optional fast path for ReverseLink: families with
// irregular port layouts precompute the reverse mapping at construction.
type reverser interface {
	ReverseLinkID(id LinkID) (LinkID, bool)
}

// ReverseLink returns the link slot running opposite to l (from l.To back to
// l.From), used by the probe engine to exclude immediate U-turns. Every
// family shipped here has symmetric links, so ok is false only for malformed
// input.
func ReverseLink(t Topology, l Link) (LinkID, bool) {
	if r, ok := t.(reverser); ok {
		return r.ReverseLinkID(l.ID)
	}
	if g, ok := t.(Geometry); ok {
		return g.OutLink(l.To, l.Dim, l.Dir.Opposite())
	}
	for port := 0; port < t.OutDegree(l.To); port++ {
		id, ok := t.OutSlot(l.To, port)
		if !ok {
			continue
		}
		if ll, ok2 := t.LinkByID(id); ok2 && ll.To == l.From {
			return id, true
		}
	}
	return Invalid, false
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
