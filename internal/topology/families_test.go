package topology

import "testing"

// familyTopos are the non-cube families plus a cube control, exercised by the
// shape-agnostic invariant tests below.
func familyTopos() []Topology {
	return []Topology{
		MustFatTree(2, 2),
		MustFatTree(2, 3),
		MustFatTree(4, 2),
		MustFatTree(3, 3),
		MustFullMesh(2),
		MustFullMesh(7),
		MustCube([]int{4, 4}, false),
		MustCube([]int{4, 4}, true),
	}
}

func TestFamilyValidation(t *testing.T) {
	if _, err := NewFatTree(1, 2); err == nil {
		t.Error("fat tree arity 1 accepted")
	}
	if _, err := NewFatTree(2, 0); err == nil {
		t.Error("fat tree with 0 levels accepted")
	}
	if _, err := NewFatTree(2, 32); err == nil {
		t.Error("2^32-host fat tree accepted")
	}
	if _, err := NewFullMesh(1); err == nil {
		t.Error("1-node full mesh accepted")
	}
	if _, err := NewFullMesh(1 << 13); err == nil {
		t.Error("oversized full mesh accepted")
	}
}

func TestFamilyCounts(t *testing.T) {
	ft := MustFatTree(4, 2) // 16 hosts, 2 levels of 4 switches
	if ft.Nodes() != 24 || ft.Hosts() != 16 {
		t.Errorf("4-ary 2-tree: nodes=%d hosts=%d, want 24/16", ft.Nodes(), ft.Hosts())
	}
	// Links: 16 host ups + 4 leaf switches with 4 up + 4 down + 4 roots with
	// 4 down = 16 + 4*8 + 4*4 = 64.
	if ft.NumLinkSlots() != 64 {
		t.Errorf("4-ary 2-tree slots = %d, want 64", ft.NumLinkSlots())
	}
	if ft.MaxOutDegree() != 8 {
		t.Errorf("4-ary 2-tree max degree = %d, want 8", ft.MaxOutDegree())
	}
	fm := MustFullMesh(7)
	if fm.Nodes() != 7 || fm.Hosts() != 7 || fm.NumLinkSlots() != 42 || fm.MaxOutDegree() != 6 {
		t.Errorf("7-node full mesh: nodes=%d hosts=%d slots=%d deg=%d",
			fm.Nodes(), fm.Hosts(), fm.NumLinkSlots(), fm.MaxOutDegree())
	}
}

// TestSlotLayoutInvariants pins the topology-owned slot contract every dense
// per-link array in the simulator relies on: per-node ranges are contiguous
// and disjoint, cover exactly [0, NumLinkSlots), and OutSlot agrees with
// LinkByID about which slots carry real links.
func TestSlotLayoutInvariants(t *testing.T) {
	for _, topo := range familyTopos() {
		sum := 0
		maxDeg := 0
		for v := Node(0); int(v) < topo.Nodes(); v++ {
			deg := topo.OutDegree(v)
			if deg > maxDeg {
				maxDeg = deg
			}
			if got := topo.SlotBase(v); got != sum {
				t.Fatalf("%s: SlotBase(%d) = %d, want %d (ranges must be contiguous)",
					topo.Name(), v, got, sum)
			}
			for port := 0; port < deg; port++ {
				id, ok := topo.OutSlot(v, port)
				if id != LinkID(sum+port) {
					t.Fatalf("%s: OutSlot(%d, %d) = %d, want %d", topo.Name(), v, port, id, sum+port)
				}
				l, exists := topo.LinkByID(id)
				if ok != exists {
					t.Fatalf("%s: OutSlot ok=%v but LinkByID ok=%v for slot %d", topo.Name(), ok, exists, id)
				}
				if !ok {
					continue
				}
				if l.ID != id || l.From != v {
					t.Fatalf("%s: LinkByID(%d) = %+v, want ID=%d From=%d", topo.Name(), id, l, id, v)
				}
				if l.To == v || int(l.To) < 0 || int(l.To) >= topo.Nodes() {
					t.Fatalf("%s: link %d has bad target %d", topo.Name(), id, l.To)
				}
			}
			if _, ok := topo.OutSlot(v, deg); ok {
				t.Fatalf("%s: OutSlot(%d, %d) beyond OutDegree resolved", topo.Name(), v, deg)
			}
			sum += deg
		}
		if sum != topo.NumLinkSlots() {
			t.Fatalf("%s: sum of OutDegree = %d, NumLinkSlots = %d", topo.Name(), sum, topo.NumLinkSlots())
		}
		if maxDeg != topo.MaxOutDegree() {
			t.Fatalf("%s: observed max degree %d, MaxOutDegree %d", topo.Name(), maxDeg, topo.MaxOutDegree())
		}
		if _, ok := topo.LinkByID(Invalid); ok {
			t.Fatalf("%s: Invalid link resolved", topo.Name())
		}
		if _, ok := topo.LinkByID(LinkID(topo.NumLinkSlots())); ok {
			t.Fatalf("%s: out-of-range link resolved", topo.Name())
		}
	}
}

// TestReverseLinkInvolution: every physical link has a reverse with swapped
// endpoints, and reversing twice returns the original — the property the
// PCS backtracking path depends on.
func TestReverseLinkInvolution(t *testing.T) {
	for _, topo := range familyTopos() {
		for _, l := range AllLinks(topo) {
			rev, ok := ReverseLink(topo, l)
			if !ok {
				t.Fatalf("%s: link %d has no reverse", topo.Name(), l.ID)
			}
			rl, ok := topo.LinkByID(rev)
			if !ok || rl.From != l.To || rl.To != l.From {
				t.Fatalf("%s: reverse of %+v is %+v", topo.Name(), l, rl)
			}
			back, ok := ReverseLink(topo, rl)
			if !ok || back != l.ID {
				t.Fatalf("%s: reverse not an involution: %d -> %d -> %d", topo.Name(), l.ID, rev, back)
			}
		}
	}
}

// bfsDistances computes single-source hop counts over AllLinks — the oracle
// for the families' closed-form Distance.
func bfsDistances(topo Topology, src Node) []int {
	adj := make([][]Node, topo.Nodes())
	for _, l := range AllLinks(topo) {
		adj[l.From] = append(adj[l.From], l.To)
	}
	dist := make([]int, topo.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []Node{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range adj[v] {
			if dist[nb] < 0 {
				dist[nb] = dist[v] + 1
				queue = append(queue, nb)
			}
		}
	}
	return dist
}

// TestDistanceMatchesBFS checks the closed-form Distance of every family
// against a breadth-first oracle for all node pairs, and Diameter against
// the maximum over host pairs.
func TestDistanceMatchesBFS(t *testing.T) {
	for _, topo := range familyTopos() {
		diam := 0
		for a := Node(0); int(a) < topo.Nodes(); a++ {
			dist := bfsDistances(topo, a)
			for b := Node(0); int(b) < topo.Nodes(); b++ {
				if dist[b] < 0 {
					t.Fatalf("%s: node %d unreachable from %d", topo.Name(), b, a)
				}
				if got := topo.Distance(a, b); got != dist[b] {
					t.Fatalf("%s: Distance(%d, %d) = %d, BFS says %d", topo.Name(), a, b, got, dist[b])
				}
				if int(a) < topo.Hosts() && int(b) < topo.Hosts() && dist[b] > diam {
					diam = dist[b]
				}
			}
		}
		if got := topo.Diameter(); got != diam {
			t.Fatalf("%s: Diameter = %d, max host-pair distance = %d", topo.Name(), got, diam)
		}
	}
}

func TestFullMeshLinkTo(t *testing.T) {
	m := MustFullMesh(6)
	seen := make(map[LinkID]bool)
	for a := Node(0); int(a) < m.Nodes(); a++ {
		for b := Node(0); int(b) < m.Nodes(); b++ {
			if a == b {
				continue
			}
			id := m.LinkTo(a, b)
			if seen[id] {
				t.Fatalf("LinkTo(%d, %d) = %d reused", a, b, id)
			}
			seen[id] = true
			l, ok := m.LinkByID(id)
			if !ok || l.From != a || l.To != b {
				t.Fatalf("LinkTo(%d, %d) resolves to %+v", a, b, l)
			}
		}
	}
	if len(seen) != m.NumLinkSlots() {
		t.Fatalf("LinkTo covers %d slots of %d", len(seen), m.NumLinkSlots())
	}
}

// TestFatTreeStructure pins the tree helpers up*/down* routing builds on:
// levels, subtree membership, the down-port walk and the up-port count.
func TestFatTreeStructure(t *testing.T) {
	ft := MustFatTree(3, 2) // 9 hosts, 3 leaf switches, 3 roots
	for h := Node(0); int(h) < ft.Hosts(); h++ {
		if ft.Level(h) != ft.Levels() {
			t.Fatalf("host %d level = %d, want %d", h, ft.Level(h), ft.Levels())
		}
		if ft.NumUpPorts(h) != 1 {
			t.Fatalf("host %d up ports = %d, want 1", h, ft.NumUpPorts(h))
		}
	}
	for v := Node(ft.Hosts()); int(v) < ft.Nodes(); v++ {
		l := ft.Level(v)
		wantUps := ft.Arity()
		if l == 0 {
			wantUps = 0
		}
		if ft.NumUpPorts(v) != wantUps {
			t.Fatalf("switch %d (level %d) up ports = %d, want %d", v, l, ft.NumUpPorts(v), wantUps)
		}
		// Every root sees every host below it; walking DownPort from any
		// switch must reach the host in Level steps without leaving its
		// subtree.
		for h := Node(0); int(h) < ft.Hosts(); h++ {
			if !ft.InSubtree(v, h) {
				continue
			}
			cur := v
			for steps := 0; cur != h; steps++ {
				if steps > ft.Levels() {
					t.Fatalf("DownPort walk from %d to host %d did not terminate", v, h)
				}
				port := ft.DownPort(cur, h)
				id, ok := ft.OutSlot(cur, port)
				if !ok {
					t.Fatalf("DownPort(%d, %d) = %d has no link", cur, h, port)
				}
				link, _ := ft.LinkByID(id)
				if link.Dir != Minus {
					t.Fatalf("DownPort(%d, %d) leads upward: %+v", cur, h, link)
				}
				if !ft.InSubtree(link.To, h) {
					t.Fatalf("down hop %d -> %d leaves the subtree of host %d", cur, link.To, h)
				}
				cur = link.To
			}
		}
	}
	// A root's subtree is everything; a leaf switch covers exactly its k hosts.
	root := Node(ft.Hosts())
	for h := Node(0); int(h) < ft.Hosts(); h++ {
		if !ft.InSubtree(root, h) {
			t.Fatalf("host %d not below root %d", h, root)
		}
	}
	covered := 0
	for v := Node(ft.Hosts()); int(v) < ft.Nodes(); v++ {
		if ft.Level(v) != ft.Levels()-1 {
			continue
		}
		for h := Node(0); int(h) < ft.Hosts(); h++ {
			if ft.InSubtree(v, h) {
				covered++
			}
		}
	}
	if covered != ft.Hosts() {
		t.Fatalf("leaf switches cover %d hosts, want %d (disjoint partition)", covered, ft.Hosts())
	}
}
