// Permutations example: the classic adversarial traffic patterns of the
// interconnection-network literature (matrix transpose, bit reversal, bit
// complement, tornado) across three protocols. Permutations are the worst
// case for dimension-order wormhole routing — every node fires at one fixed
// partner, so a handful of links saturate — and the best case for circuits,
// since each node needs exactly one long-lived circuit.
package main

import (
	"fmt"
	"log"

	"repro/wave"
)

func main() {
	patterns := []string{"transpose", "bitreverse", "bitcomplement", "tornado"}
	protocols := []string{"wormhole", "clrp", "carp"}

	fmt.Println("permutation traffic on an 8x8 torus, 64-flit messages, load 0.10")
	fmt.Println()
	fmt.Printf("%-14s", "pattern")
	for _, p := range protocols {
		fmt.Printf(" %-12s", p+"-lat")
	}
	fmt.Println(" best")
	for _, pat := range patterns {
		fmt.Printf("%-14s", pat)
		best, bestLat := "", 0.0
		for _, proto := range protocols {
			cfg := wave.DefaultConfig()
			cfg.Protocol = proto
			sim, err := wave.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			if proto == "carp" {
				// The compiler knows a permutation exactly: one circuit per
				// node to its fixed partner, opened before the traffic.
				if err := sim.OpenAll(pat); err != nil {
					log.Fatal(err)
				}
			}
			res, err := sim.RunLoad(wave.Workload{
				Pattern: pat, Load: 0.10, FixedLength: 64, WantCircuit: true,
			}, 1500, 8000)
			if err != nil {
				log.Fatalf("%s/%s: %v", pat, proto, err)
			}
			fmt.Printf(" %-12.1f", res.AvgLatency)
			if best == "" || res.AvgLatency < bestLat {
				best, bestLat = proto, res.AvgLatency
			}
		}
		fmt.Printf(" %s\n", best)
	}
	fmt.Println()
	fmt.Println("With compiler-planned (CARP) or cached (CLRP) circuits, each node's single")
	fmt.Println("partner streams contention-free at the wave clock, while dimension-order")
	fmt.Println("wormhole fights over the few links every permutation stresses. Tornado is")
	fmt.Println("the exception that proves the Force bit's worth: its circuits are so long")
	fmt.Println("(half-way around every ring) that 64 of them cannot coexist; CARP's polite")
	fmt.Println("probes give up and fall back to wormhole, while CLRP's phase-two Force")
	fmt.Println("steals channels and still gets most traffic onto circuits.")
}
