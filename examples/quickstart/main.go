// Quickstart: build an 8x8 torus of wave routers, run CLRP under uniform
// traffic with some temporal locality, and print the results — the minimal
// end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"repro/wave"
)

func main() {
	// Default configuration: 8x8 torus, CLRP protocol, Duato adaptive
	// wormhole routing (w=3), k=2 wave switches at 4x clock, MB-2 probes,
	// 8-entry LRU circuit caches.
	cfg := wave.DefaultConfig()
	sim, err := wave.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 64-flit messages at 0.1 flits/node/cycle; each node reuses a 4-entry
	// working set of destinations 80% of the time — the communication
	// locality wave switching exploits.
	res, err := sim.RunLoad(wave.Workload{
		Pattern:     "uniform",
		Load:        0.10,
		FixedLength: 64,
		WorkingSet:  4,
		Reuse:       0.8,
		WantCircuit: true,
	}, 2000 /* warmup */, 10000 /* measured cycles */)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("delivered %d messages in %d cycles\n", res.Delivered, res.Cycles)
	fmt.Printf("average latency: %.1f cycles (p99 %.0f)\n", res.AvgLatency, res.P99Latency)
	fmt.Printf("accepted throughput: %.4f flits/node/cycle\n", res.Throughput)
	fmt.Printf("carried by circuits: %.1f%% (cache hit rate %.1f%%)\n",
		res.CircuitFraction*100, res.HitRate*100)

	// The same workload through plain wormhole switching, for contrast.
	cfg.Protocol = "wormhole"
	whSim, err := wave.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	wh, err := whSim.RunLoad(wave.Workload{
		Pattern: "uniform", Load: 0.10, FixedLength: 64,
		WorkingSet: 4, Reuse: 0.8,
	}, 2000, 10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwormhole baseline: %.1f cycles average -> wave switching gains %.2fx\n",
		wh.AvgLatency, wh.AvgLatency/res.AvgLatency)
}
