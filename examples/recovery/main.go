// Recovery example: deadlock avoidance vs deadlock recovery, live.
//
// The paper's wormhole substrate assumes deadlock-free routing (dateline
// virtual channels on a torus). The related work it cites explores the
// opposite school: let deadlocks happen and recover. This example runs both
// on the same 8x8 torus at increasing load — the dateline network with two
// virtual channels, and a deliberately unsafe dateline-free network with one
// deep virtual channel plus abort-and-retry recovery — and prints the moment
// the recovery scheme's abort churn overtakes the avoidance scheme's virtual
// channel cost.
package main

import (
	"fmt"
	"log"

	"repro/wave"
)

func run(scheme string, load float64) (*wave.Result, error) {
	cfg := wave.DefaultConfig()
	cfg.Protocol = "wormhole" // isolate the wormhole design space
	switch scheme {
	case "avoidance":
		cfg.Routing = "dor"
		cfg.NumVCs = 2
		cfg.BufDepth = 2
	case "recovery":
		cfg.Routing = "dor-nodateline" // cyclic dependency graph: CAN deadlock
		cfg.NumVCs = 1
		cfg.BufDepth = 4 // same total buffering per physical channel
		cfg.RecoveryTimeout = 64
	}
	sim, err := wave.New(cfg)
	if err != nil {
		return nil, err
	}
	return sim.RunLoad(wave.Workload{
		Pattern: "uniform", Load: load, FixedLength: 16,
	}, 1000, 8000)
}

func main() {
	fmt.Println("deadlock avoidance (dateline VCs) vs recovery (abort-and-retry), 8x8 torus")
	fmt.Println("equal buffering per physical channel; 16-flit uniform traffic")
	fmt.Println()
	fmt.Printf("%-8s %-16s %-16s %-10s\n", "load", "avoidance-lat", "recovery-lat", "aborts")
	for _, load := range []float64{0.05, 0.10, 0.15, 0.20, 0.25} {
		av, err := run("avoidance", load)
		if err != nil {
			log.Fatalf("avoidance load=%.2f: %v", load, err)
		}
		rc, err := run("recovery", load)
		if err != nil {
			log.Fatalf("recovery load=%.2f: %v", load, err)
		}
		marker := ""
		if rc.AvgLatency > av.AvgLatency*1.5 {
			marker = "  <- abort churn dominates"
		}
		fmt.Printf("%-8.2f %-16.1f %-16.1f %-10d%s\n",
			load, av.AvgLatency, rc.AvgLatency, rc.RecoveryAborts, marker)
	}
	fmt.Println()
	fmt.Println("Every message was delivered in every run — the recovery network's dependency")
	fmt.Println("graph is provably cyclic (cmd/cdgcheck flags it), and the abort mechanism is")
	fmt.Println("what keeps it live. The paper builds on avoidance instead, which needs no")
	fmt.Println("retries and stays stable into saturation.")
}
