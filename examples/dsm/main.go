// DSM example: a distributed-shared-memory style workload — the paper's
// motivating case where "messages are directly sent by the hardware ... as a
// consequence of remote memory accesses or coherence commands" and reducing
// network hardware latency is crucial.
//
// The traffic is bimodal: short coherence commands (4 flits) mixed with cache
// line data replies (32 flits), with strong temporal locality (each node
// mostly touches a small set of homes, as a directory protocol does). The
// example compares wormhole switching with CLRP across locality levels and
// shows where the cache-of-circuits idea pays.
package main

import (
	"fmt"
	"log"

	"repro/wave"
)

func run(protocol string, reuse float64) (*wave.Result, error) {
	cfg := wave.DefaultConfig()
	cfg.Protocol = protocol
	sim, err := wave.New(cfg)
	if err != nil {
		return nil, err
	}
	// Spatial locality from process mapping (paper section 1) keeps homes
	// close by, so circuits are short and many can coexist; the temporal
	// locality knob is the reuse probability.
	w := wave.Workload{
		Pattern:      "near",
		Load:         0.08,
		BimodalShort: 4,   // coherence command / ack
		BimodalLong:  32,  // cache line transfer
		BimodalPLong: 0.4, // 40% of messages carry data
		WantCircuit:  true,
	}
	if reuse > 0 {
		w.WorkingSet = 2 // each node's hot home directories
		w.Reuse = reuse
	}
	return sim.RunLoad(w, 2000, 10000)
}

func main() {
	fmt.Println("DSM-style bimodal traffic (4-flit commands + 32-flit lines) on an 8x8 torus")
	fmt.Println()
	fmt.Printf("%-10s %-10s %-12s %-12s %-10s %-8s\n",
		"protocol", "locality", "avg-latency", "p99-latency", "circuits", "hit-rate")
	for _, reuse := range []float64{0, 0.5, 0.9} {
		for _, proto := range []string{"wormhole", "clrp"} {
			res, err := run(proto, reuse)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-10.0f%% %-12.1f %-12.0f %-9.0f%% %-7.0f%%\n",
				proto, reuse*100, res.AvgLatency, res.P99Latency,
				res.CircuitFraction*100, res.HitRate*100)
		}
	}
	fmt.Println()
	fmt.Println("Reading: with no locality, establishing circuits for short messages is overhead;")
	fmt.Println("as the directory working set stabilises, CLRP amortises setup across reuses and")
	fmt.Println("wins on both average and tail latency (in-order delivery on circuits included).")
}
