// Faulty-network example: the MB-m probe protocol's static fault tolerance.
//
// The paper: "The probe uses the MB-m protocol, being allowed to backtrack if
// it cannot proceed forward. This protocol is very resilient to static faults
// in the network." This example injects increasing numbers of broken wave
// channels and shows (a) circuit setup degrading gracefully as probes route
// around faults and (b) delivery never failing, because CLRP phase three
// falls back to wormhole switching.
package main

import (
	"fmt"
	"log"

	"repro/wave"
)

func main() {
	fmt.Println("MB-m fault resilience on an 8x8 torus (512 wave channels at k=2)")
	fmt.Println()
	fmt.Printf("%-16s %-14s %-14s %-12s %-10s\n",
		"faulty-channels", "probe-success", "circuit-frac", "latency", "delivered")

	for _, faults := range []int{0, 32, 64, 128, 256, 512} {
		cfg := wave.DefaultConfig()
		cfg.Protocol = "clrp"
		cfg.MaxMisroutes = 3 // generous misrouting: the fault-tolerance knob
		sim, err := wave.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.InjectFaults(faults, 42); err != nil {
			log.Fatal(err)
		}
		res, err := sim.RunLoad(wave.Workload{
			Pattern:     "near", // mapped processes: short circuits
			Load:        0.05,
			FixedLength: 64,
			WorkingSet:  2,
			Reuse:       0.8,
			WantCircuit: true,
		}, 1000, 8000)
		if err != nil {
			// A watchdog trip here would falsify the theorems; it never fires.
			log.Fatalf("faults=%d: %v", faults, err)
		}
		pc := res.Counters
		success := 0.0
		if pc.Succeeded+pc.Failed > 0 {
			success = float64(pc.Succeeded) / float64(pc.Succeeded+pc.Failed)
		}
		fmt.Printf("%-16d %-13.0f%% %-13.0f%% %-12.1f %-10d\n",
			faults, success*100, res.CircuitFraction*100, res.AvgLatency, res.Delivered)
	}

	fmt.Println()
	fmt.Println("With every wave channel broken (512), all traffic still arrives — through")
	fmt.Println("switch S0 by wormhole. \"The proposed protocols are always able to deliver")
	fmt.Println("messages\" (paper, abstract).")
}
