// Multicomputer example: message passing with CARP compiler directives.
//
// The paper's CARP protocol "relies on the programmer and/or the compiler to
// decide when a circuit should be established or torn down for a set of
// messages". This example plays that compiler: it builds a directive program
// for a nearest-neighbour stencil exchange (the classic multicomputer
// kernel) — open circuits to the four neighbours, stream the halo exchanges
// for several iterations (plus short reduction messages the compiler keeps
// off the circuits), close the circuits — and runs it through the CARP
// protocol, comparing against the same messages sent by wormhole switching.
package main

import (
	"fmt"
	"log"

	"repro/wave"
)

const (
	side       = 8
	iterations = 10
	haloFlits  = 96 // one face of halo data
	ctrlFlits  = 2  // tiny convergence-check message
	iterGap    = 400
)

func newSim(protocol string) (*wave.Simulator, error) {
	cfg := wave.DefaultConfig()
	cfg.Protocol = protocol
	cfg.Topology = wave.TopologyConfig{Kind: "torus", Radix: []int{side, side}}
	cfg.CacheCapacity = 8 // the four neighbour circuits fit comfortably
	return wave.New(cfg)
}

// stencilProgram emits the CARP directives a compiler would generate for an
// iterative 4-neighbour halo exchange.
func stencilProgram(sim *wave.Simulator) *wave.Program {
	var p wave.Program
	// Prologue: open a circuit to each neighbour before the loop begins —
	// the paper's prefetch analogy ("set up a circuit between those nodes
	// before that circuit is needed").
	for n := 0; n < sim.Nodes(); n++ {
		for _, nb := range sim.Neighbors(n) {
			p.At(0).Open(n, nb)
		}
	}
	// Iterations: one halo to every neighbour, plus a short control message
	// to the reduction root that is not worth a circuit.
	for it := 0; it < iterations; it++ {
		t := int64(100 + it*iterGap)
		for n := 0; n < sim.Nodes(); n++ {
			for _, nb := range sim.Neighbors(n) {
				p.At(t).Send(n, nb, haloFlits)
			}
			if n != 0 {
				p.At(t+50).SendWormhole(n, 0, ctrlFlits)
			}
		}
	}
	// Epilogue: the message set is done; release the channels.
	end := int64(100 + iterations*iterGap)
	for n := 0; n < sim.Nodes(); n++ {
		for _, nb := range sim.Neighbors(n) {
			p.At(end).Close(n, nb)
		}
	}
	return &p
}

// measure runs the program and returns average halo and control latencies.
func measure(protocol string) (halo, ctrl float64, onCircuit int, err error) {
	sim, err := newSim(protocol)
	if err != nil {
		return 0, 0, 0, err
	}
	var haloLat, ctrlLat, haloN, ctrlN int64
	sim.OnDelivered(func(d wave.Delivery) {
		if d.Len == haloFlits {
			haloLat += d.Latency()
			haloN++
			if d.ViaCircuit {
				onCircuit++
			}
		} else {
			ctrlLat += d.Latency()
			ctrlN++
		}
	})
	prog := stencilProgram(sim)
	if err := sim.RunProgram(prog.Reader(), 1_000_000); err != nil {
		return 0, 0, 0, err
	}
	return float64(haloLat) / float64(haloN), float64(ctrlLat) / float64(ctrlN), onCircuit, nil
}

func main() {
	carpHalo, carpCtrl, circ, err := measure("carp")
	if err != nil {
		log.Fatal(err)
	}
	whHalo, whCtrl, _, err := measure("wormhole")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("stencil halo exchange on an %dx%d torus: %d iterations, %d-flit halos\n\n",
		side, side, iterations, haloFlits)
	fmt.Printf("CARP:     halo %.1f cycles (%d halos on compiler-planned circuits), control %.1f cycles (wormhole by choice)\n",
		carpHalo, circ, carpCtrl)
	fmt.Printf("wormhole: halo %.1f cycles, control %.1f cycles\n", whHalo, whCtrl)
	fmt.Printf("\ngain on the circuits the compiler planned: %.2fx\n", whHalo/carpHalo)
}
