// Package repro_test's smoke test is the repository's front door: one small
// end-to-end pass over every major subsystem — all four protocols, a CARP
// program, a fault run, closed-loop traffic and the static deadlock checker —
// in a few seconds. If this passes, the stack is wired together correctly;
// the per-package suites cover depth.
package repro_test

import (
	"strings"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
	"repro/wave"
)

func TestSmoke(t *testing.T) {
	base := func(protocol string) wave.Config {
		cfg := wave.DefaultConfig()
		cfg.Topology = wave.TopologyConfig{Kind: "torus", Radix: []int{4, 4}}
		cfg.Protocol = protocol
		return cfg
	}

	t.Run("protocols", func(t *testing.T) {
		for _, proto := range []string{"wormhole", "clrp", "carp", "pcs"} {
			s, err := wave.New(base(proto))
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.RunLoad(wave.Workload{
				Pattern: "uniform", Load: 0.05, FixedLength: 32,
				WorkingSet: 2, Reuse: 0.8, WantCircuit: true,
			}, 300, 2000)
			if err != nil {
				t.Fatalf("%s: %v", proto, err)
			}
			if res.Delivered == 0 {
				t.Fatalf("%s delivered nothing", proto)
			}
		}
	})

	t.Run("carp-program", func(t *testing.T) {
		s, err := wave.New(base("carp"))
		if err != nil {
			t.Fatal(err)
		}
		var p wave.Program
		p.At(0).Open(0, 5)
		p.At(40).Send(0, 5, 64)
		p.At(300).Close(0, 5)
		if err := s.RunProgram(p.Reader(), 100_000); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("faults", func(t *testing.T) {
		s, err := wave.New(base("clrp"))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.InjectFaults(32, 5); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunLoad(wave.Workload{
			Pattern: "uniform", Load: 0.05, FixedLength: 32, WantCircuit: true,
		}, 300, 2000); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("closed-loop", func(t *testing.T) {
		s, err := wave.New(base("clrp"))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.RunClosedLoop(wave.ClosedWorkload{
			Pattern: "near", ReqFlits: 4, ReplyFlits: 16,
			Outstanding: 2, Requests: 5, WantCircuit: true,
		}, 1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed != int64(5*s.Nodes()) {
			t.Fatalf("closed loop completed %d", res.Completed)
		}
	})

	t.Run("static-deadlock-check", func(t *testing.T) {
		topo := topology.MustCube([]int{4, 4}, true)
		fn, err := routing.New("duato", topo, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := routing.Verify(topo, fn); err != nil {
			t.Fatal(err)
		}
		bad, err := routing.New("dor-nodateline", topo, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := routing.Verify(topo, bad); err == nil {
			t.Fatal("cyclic function passed verification")
		} else if !strings.Contains(err.Error(), "cycle") {
			t.Fatalf("unexpected error: %v", err)
		}
	})
}
